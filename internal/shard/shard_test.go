package shard

import (
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/coalesce"
	"repro/internal/graph"
	"repro/internal/unionfind"
)

// oracle is a sequential model of the combined edge set with the same batch
// semantics as Coordinator.Apply: inserts first (first staging of an absent
// edge gets credit), then deletes (against the post-insert set), then
// queries (connectivity of the post-update set).
type oracle struct {
	n     int
	edges map[uint64]bool
}

func newOracle(n int) *oracle { return &oracle{n: n, edges: map[uint64]bool{}} }

func (o *oracle) apply(ops []coalesce.Op) []bool {
	res := make([]bool, len(ops))
	for i, op := range ops {
		if op.Kind != coalesce.OpInsert || op.U == op.V {
			continue
		}
		if k := (graph.Edge{U: op.U, V: op.V}).Key(); !o.edges[k] {
			o.edges[k] = true
			res[i] = true
		}
	}
	for i, op := range ops {
		if op.Kind != coalesce.OpDelete || op.U == op.V {
			continue
		}
		if k := (graph.Edge{U: op.U, V: op.V}).Key(); o.edges[k] {
			delete(o.edges, k)
			res[i] = true
		}
	}
	var uf *unionfind.UF
	for i, op := range ops {
		if op.Kind != coalesce.OpQuery {
			continue
		}
		if uf == nil {
			uf = o.uf()
		}
		res[i] = uf.Connected(op.U, op.V)
	}
	return res
}

func (o *oracle) uf() *unionfind.UF {
	uf := unionfind.New(o.n)
	for k := range o.edges {
		e := graph.FromKey(k)
		uf.Union(e.U, e.V)
	}
	return uf
}

func randOps(rng *rand.Rand, n, count int) []coalesce.Op {
	ops := make([]coalesce.Op, count)
	for i := range ops {
		kind := coalesce.OpInsert
		switch r := rng.Intn(100); {
		case r < 45:
			kind = coalesce.OpInsert
		case r < 75:
			kind = coalesce.OpDelete
		default:
			kind = coalesce.OpQuery
		}
		ops[i] = coalesce.Op{Kind: kind, U: int32(rng.Intn(n)), V: int32(rng.Intn(n))}
	}
	return ops
}

// TestShardedDifferential drives a randomized mixed workload through
// Coordinators with 1, 2 and 4 shards and checks every result — update
// credit and query answers — against the sequential oracle. The vertex
// universe is small relative to the operation count, so components merge
// and split constantly, and with k >= 2 a large fraction of the edges are
// cross-shard: deletions routinely sever components THROUGH the boundary
// graph, which is exactly the composition path under test.
func TestShardedDifferential(t *testing.T) {
	rounds := 400
	if testing.Short() {
		rounds = 120
	}
	for _, k := range []int{1, 2, 4} {
		t.Run(map[int]string{1: "k=1", 2: "k=2", 4: "k=4"}[k], func(t *testing.T) {
			const n = 96
			c, err := New(n, k, Options{MaxDelay: 0})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			o := newOracle(n)
			rng := rand.New(rand.NewSource(int64(7000 + k)))
			for r := 0; r < rounds; r++ {
				ops := randOps(rng, n, 1+rng.Intn(16))
				got, err := c.Apply(ops)
				if err != nil {
					t.Fatalf("round %d: %v", r, err)
				}
				want := o.apply(ops)
				for i := range ops {
					if got[i] != want[i] {
						t.Fatalf("round %d op %d (%+v): got %v, oracle says %v",
							r, i, ops[i], got[i], want[i])
					}
				}
			}
			// Full pairwise sweep at the end: every pair, coordinator vs
			// oracle, through ConnectedBatch's scatter-gather path.
			uf := o.uf()
			var qs []graph.Edge
			for u := int32(0); u < n; u++ {
				for v := u; v < n; v++ {
					qs = append(qs, graph.Edge{U: u, V: v})
				}
			}
			ans, err := c.ConnectedBatch(qs)
			if err != nil {
				t.Fatal(err)
			}
			for i, q := range qs {
				if want := uf.Connected(q.U, q.V); ans[i] != want {
					t.Fatalf("final sweep {%d,%d}: got %v, want %v", q.U, q.V, ans[i], want)
				}
			}
		})
	}
}

// TestCrossShardSplit pins the boundary-graph composition deterministically:
// a component assembled purely from cross-shard edges is split by deleting
// one of them, and the two halves must stop being connected even though no
// shard-local engine observed any change.
func TestCrossShardSplit(t *testing.T) {
	const n = 64
	const k = 4
	c, err := New(n, k, Options{MaxDelay: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Build a path v0 - v1 - v2 - v3 where consecutive vertices live on
	// different shards (cross-shard edges only).
	var path []int32
	next := int32(0)
	for len(path) < 4 {
		if len(path) == 0 || Partition(next, k) != Partition(path[len(path)-1], k) {
			path = append(path, next)
		}
		next++
	}
	for i := 0; i+1 < len(path); i++ {
		if ok, err := c.Insert(path[i], path[i+1]); err != nil || !ok {
			t.Fatalf("insert {%d,%d}: ok=%v err=%v", path[i], path[i+1], ok, err)
		}
	}
	if ok, _ := c.Connected(path[0], path[3]); !ok {
		t.Fatal("path endpoints not connected after cross-shard inserts")
	}
	// Sever the middle cross-shard edge: the component must split through
	// the boundary graph.
	if ok, err := c.Delete(path[1], path[2]); err != nil || !ok {
		t.Fatalf("delete middle edge: ok=%v err=%v", ok, err)
	}
	if ok, _ := c.Connected(path[0], path[3]); ok {
		t.Fatal("endpoints still connected after boundary split")
	}
	if ok, _ := c.Connected(path[0], path[1]); !ok {
		t.Fatal("left half lost its own edge")
	}
	if ok, _ := c.Connected(path[2], path[3]); !ok {
		t.Fatal("right half lost its own edge")
	}

	// Reconnect through a different boundary route and verify the index
	// follows (rebuild after every mutation batch).
	if ok, err := c.Insert(path[0], path[3]); err != nil || !ok {
		t.Fatalf("reinsert: ok=%v err=%v", ok, err)
	}
	if ok, _ := c.Connected(path[1], path[2]); !ok {
		t.Fatal("reconnect through new boundary edge not observed")
	}
}

// TestShardedDurableRestore round-trips a sharded durable directory:
// workload → close → reopen (per-shard checkpoint/WAL restore) → the
// reopened coordinator must answer exactly like the oracle, including
// after a mid-history checkpoint truncated the logs.
func TestShardedDurableRestore(t *testing.T) {
	const n = 80
	const k = 4
	dir := t.TempDir()
	c, err := New(n, k, Options{MaxDelay: 0, DurDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	o := newOracle(n)
	rng := rand.New(rand.NewSource(99))
	run := func(rounds int) {
		for r := 0; r < rounds; r++ {
			ops := randOps(rng, n, 1+rng.Intn(12))
			got, err := c.Apply(ops)
			if err != nil {
				t.Fatal(err)
			}
			want := o.apply(ops)
			for i := range ops {
				if got[i] != want[i] {
					t.Fatalf("round %d op %d: got %v want %v", r, i, got[i], want[i])
				}
			}
		}
	}
	run(60)
	if _, err := c.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	run(60)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: every shard restores independently (checkpoint + WAL tail).
	c, err = New(n, k, Options{MaxDelay: 0, DurDir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer c.Close()
	uf := o.uf()
	var qs []graph.Edge
	for u := int32(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			qs = append(qs, graph.Edge{U: u, V: v})
		}
	}
	ans, err := c.ConnectedBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		if want := uf.Connected(q.U, q.V); ans[i] != want {
			t.Fatalf("after restore {%d,%d}: got %v want %v", q.U, q.V, ans[i], want)
		}
	}

	// The meta pin must reject a mismatched shard count.
	if _, err := New(n, 2, Options{DurDir: dir}); err == nil {
		t.Fatal("reopen with wrong shard count did not fail")
	}
	if _, err := New(n*2, k, Options{DurDir: dir}); err == nil {
		t.Fatal("reopen with wrong n did not fail")
	}
}

// TestShardMetaRoundTrip covers the meta file directly.
func TestShardMetaRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if _, _, found, err := ReadMeta(dir); err != nil || found {
		t.Fatalf("fresh dir: found=%v err=%v", found, err)
	}
	if err := writeMeta(dir, 4, 1024); err != nil {
		t.Fatal(err)
	}
	k, n, found, err := ReadMeta(dir)
	if err != nil || !found || k != 4 || n != 1024 {
		t.Fatalf("ReadMeta = (%d,%d,%v,%v), want (4,1024,true,nil)", k, n, found, err)
	}
	if _, _, _, err := ReadMeta(filepath.Join(dir, "nope")); err != nil {
		t.Fatalf("missing dir should read as not-found, got %v", err)
	}
}

// TestShardedConcurrentSmoke hammers one Coordinator from many goroutines
// under the race detector: random mixed batches, scatter-gather queries and
// index rebuilds all interleave. Afterwards a sequential phase verifies the
// coordinator still answers deterministic traffic correctly.
func TestShardedConcurrentSmoke(t *testing.T) {
	const n = 128
	const k = 4
	perG := 300
	if testing.Short() {
		perG = 80
	}
	c, err := New(n, k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(300 + w)))
			for i := 0; i < perG; i++ {
				if _, err := c.Apply(randOps(rng, n, 1+rng.Intn(8))); err != nil {
					t.Errorf("apply: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// Deterministic epilogue on vertices the random phase may have touched:
	// force a known state and verify it end to end.
	probe := []coalesce.Op{
		{Kind: coalesce.OpInsert, U: 0, V: 1},
		{Kind: coalesce.OpInsert, U: 1, V: 2},
		{Kind: coalesce.OpQuery, U: 0, V: 2},
	}
	res, err := c.Apply(probe)
	if err != nil {
		t.Fatal(err)
	}
	if !res[2] {
		t.Fatal("0 and 2 not connected after inserting {0,1},{1,2}")
	}
}

// TestLastBoundaryEdgeDelete pins the case the chaos harness's shard oracle
// depends on: two shards joined by exactly one remaining boundary edge.
// Deleting a redundant cross-shard edge must keep the composed component
// intact; deleting the LAST one must split it — the boundary index has no
// shard-local evidence to fall back on.
func TestLastBoundaryEdgeDelete(t *testing.T) {
	const n = 64
	const k = 2
	c, err := New(n, k, Options{MaxDelay: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Two vertices per shard: a0,a1 on one shard, b0,b1 on the other.
	var a, b []int32
	for v := int32(0); v < n && (len(a) < 2 || len(b) < 2); v++ {
		if Partition(v, k) == 0 && len(a) < 2 {
			a = append(a, v)
		} else if Partition(v, k) == 1 && len(b) < 2 {
			b = append(b, v)
		}
	}
	mustDo := func(kind coalesce.Kind, u, v int32) {
		if ok, err := c.Apply([]coalesce.Op{{Kind: kind, U: u, V: v}}); err != nil || !ok[0] {
			t.Fatalf("op %v {%d,%d}: ok=%v err=%v", kind, u, v, ok, err)
		}
	}
	// Intra-shard spines plus two parallel boundary edges between the pair.
	mustDo(coalesce.OpInsert, a[0], a[1])
	mustDo(coalesce.OpInsert, b[0], b[1])
	mustDo(coalesce.OpInsert, a[0], b[0])
	mustDo(coalesce.OpInsert, a[1], b[1])

	if ok, _ := c.Connected(a[0], b[1]); !ok {
		t.Fatal("component not assembled across the boundary")
	}
	// Drop the redundant boundary edge: still one component via a1-b1.
	mustDo(coalesce.OpDelete, a[0], b[0])
	if ok, _ := c.Connected(a[0], b[1]); !ok {
		t.Fatal("severed after deleting a REDUNDANT boundary edge")
	}
	// Drop the last boundary edge: the shard pair must disconnect entirely.
	mustDo(coalesce.OpDelete, a[1], b[1])
	for _, q := range []graph.Edge{{U: a[0], V: b[0]}, {U: a[0], V: b[1]}, {U: a[1], V: b[0]}, {U: a[1], V: b[1]}} {
		if ok, _ := c.Connected(q.U, q.V); ok {
			t.Fatalf("{%d,%d} still connected after last boundary edge was deleted", q.U, q.V)
		}
	}
	// Each side keeps its intra-shard spine.
	if ok, _ := c.Connected(a[0], a[1]); !ok {
		t.Fatal("left shard lost its intra-shard edge")
	}
	if ok, _ := c.Connected(b[0], b[1]); !ok {
		t.Fatal("right shard lost its intra-shard edge")
	}
	// And one reinsert reconnects everything.
	mustDo(coalesce.OpInsert, a[0], b[1])
	if ok, _ := c.Connected(a[1], b[0]); !ok {
		t.Fatal("reinsert of a boundary edge did not reconnect the component")
	}
}

// TestCrossShardPairChurnOneEpoch stresses re-insert/delete churn of the
// SAME cross-shard pairs inside single Apply batches: the epoch semantics
// (inserts staged first, then deletes against the post-insert set) must
// hold for boundary edges exactly as for shard-local ones, both for the
// per-op credit and for the surviving edge set. Every batch and the final
// sweep are checked against the sequential oracle.
func TestCrossShardPairChurnOneEpoch(t *testing.T) {
	const n = 64
	const k = 4
	c, err := New(n, k, Options{MaxDelay: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	o := newOracle(n)

	// A handful of fixed cross-shard pairs; all churn happens on these.
	var pairs []graph.Edge
	for u := int32(0); u < n && len(pairs) < 4; u++ {
		for v := u + 1; v < n && len(pairs) < 4; v++ {
			if Partition(u, k) != Partition(v, k) {
				pairs = append(pairs, graph.Edge{U: u, V: v})
				break
			}
		}
	}

	check := func(desc string, ops []coalesce.Op) {
		t.Helper()
		got, err := c.Apply(ops)
		if err != nil {
			t.Fatalf("%s: %v", desc, err)
		}
		want := o.apply(ops)
		for i := range ops {
			if got[i] != want[i] {
				t.Fatalf("%s op %d (%+v): got %v, oracle says %v", desc, i, ops[i], got[i], want[i])
			}
		}
	}

	p0, p1 := pairs[0], pairs[1]
	// Insert and delete of the same boundary edge in one epoch: the insert
	// is credited, the delete removes it, the post-update query sees the
	// other pair's edge only.
	check("ins+del same pair", []coalesce.Op{
		{Kind: coalesce.OpInsert, U: p0.U, V: p0.V},
		{Kind: coalesce.OpDelete, U: p0.U, V: p0.V},
		{Kind: coalesce.OpInsert, U: p1.U, V: p1.V},
		{Kind: coalesce.OpQuery, U: p0.U, V: p0.V},
		{Kind: coalesce.OpQuery, U: p1.U, V: p1.V},
	})
	// Delete written before insert in program order still applies as
	// insert-then-delete: the edge must NOT survive the epoch.
	check("del-before-ins same pair", []coalesce.Op{
		{Kind: coalesce.OpDelete, U: p0.U, V: p0.V},
		{Kind: coalesce.OpInsert, U: p0.U, V: p0.V},
		{Kind: coalesce.OpQuery, U: p0.U, V: p0.V},
	})
	// Duplicate staging: only the first insert of an absent edge and the
	// first delete of a present one get credit.
	check("duplicate staging", []coalesce.Op{
		{Kind: coalesce.OpInsert, U: p0.U, V: p0.V},
		{Kind: coalesce.OpInsert, U: p0.U, V: p0.V},
		{Kind: coalesce.OpDelete, U: p0.U, V: p0.V},
		{Kind: coalesce.OpDelete, U: p0.U, V: p0.V},
	})

	// Randomized churn confined to the fixed cross-shard pairs, so the same
	// boundary edges flap constantly within and across epochs.
	rng := rand.New(rand.NewSource(4242))
	for r := 0; r < 200; r++ {
		count := 1 + rng.Intn(6)
		ops := make([]coalesce.Op, count)
		for i := range ops {
			p := pairs[rng.Intn(len(pairs))]
			kind := coalesce.OpInsert
			switch x := rng.Intn(10); {
			case x < 4:
				kind = coalesce.OpDelete
			case x < 6:
				kind = coalesce.OpQuery
			}
			ops[i] = coalesce.Op{Kind: kind, U: p.U, V: p.V}
		}
		check("churn", ops)
	}
	// Full pairwise sweep against the oracle's union-find.
	uf := o.uf()
	var qs []graph.Edge
	for u := int32(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			qs = append(qs, graph.Edge{U: u, V: v})
		}
	}
	ans, err := c.ConnectedBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		if want := uf.Connected(q.U, q.V); ans[i] != want {
			t.Fatalf("final sweep {%d,%d}: got %v, want %v", q.U, q.V, ans[i], want)
		}
	}
}
