// Sharded connectivity events: the coordinator re-derives a GLOBAL
// labelling transition whenever any engine's local partition changes, so
// the event hub above it sees exactly the composed graph's merges and
// splits — never a shard-local artifact (an intra-shard split that stays
// bridged through the boundary engine produces no global event).
//
// Mechanics: every engine's snapshot differ already detects its own
// partition-changing epochs (engine.SubscribeDiffs). The composer hooks all
// k+1 of them; on any firing it recomposes the global min-vertex labelling
// from the engines' published snapshots (composeLabels — wait-free loads),
// diffs it against the previous composition, and feeds the transition to
// the coordinator's diff subscribers. The callbacks run on the engines'
// dispatcher goroutines; composerMu serializes them, so transitions are
// totally ordered and each global change is emitted exactly once (a
// dispatcher that recomposes after a concurrent one already integrated its
// engine's change sees an empty diff and emits nothing). The recompose is
// O((k+1)·n·α) and is skipped entirely while nobody subscribes.
package shard

import (
	"sync"
	"sync/atomic"

	"repro/internal/snapshot"
)

// composer is the coordinator's global-labelling differ.
type composer struct {
	c *Coordinator

	nsubs atomic.Int32 // fast-path gate for the per-epoch callbacks

	mu    sync.Mutex
	prev  *snapshot.Labels // last composed global labelling; nil until first subscriber
	epoch uint64
	subs  map[int]func(seq uint64, d *snapshot.Diff)
	next  int
}

// initComposer hooks the composer into every engine's diff stream. Called
// from New; the cancel functions are not retained because the engines and
// the composer share the coordinator's lifetime.
func (c *Coordinator) initComposer() {
	cp := &composer{c: c, subs: make(map[int]func(uint64, *snapshot.Diff))}
	c.comp = cp
	for _, e := range c.engines {
		e.SubscribeDiffs(cp.onDiff) //conn:dispatcher-entry
	}
}

// SubscribeDiffs registers fn to observe every GLOBAL partition-changing
// transition of the combined graph, serialized and in order. seq is always
// zero (a sharded namespace has no single durable position); the diff's
// labellings carry the composer's own epoch counter. fn must not block —
// it runs on an engine dispatcher goroutine. The returned cancel is
// idempotent. The first subscription snapshots the current composition as
// the diff baseline.
func (c *Coordinator) SubscribeDiffs(fn func(seq uint64, d *snapshot.Diff)) (cancel func()) {
	cp := c.comp
	cp.mu.Lock()
	if cp.prev == nil {
		cp.prev = snapshot.NewLabels(c.composeLabels(), cp.epoch)
	}
	id := cp.next
	cp.next++
	cp.subs[id] = fn
	cp.mu.Unlock()
	cp.nsubs.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			cp.mu.Lock()
			delete(cp.subs, id)
			cp.mu.Unlock()
			cp.nsubs.Add(-1)
		})
	}
}

// onDiff is every engine's diff callback: recompose, diff globally, fan
// out. Runs on the publishing engine's dispatcher goroutine; cp.mu
// serializes concurrent engines, and the engine's own ordering guarantees
// make each engine's transitions arrive here in its epoch order.
//
//conn:dispatcher-only
func (cp *composer) onDiff(_ uint64, _ *snapshot.Diff) {
	if cp.nsubs.Load() == 0 {
		return
	}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if cp.prev == nil || len(cp.subs) == 0 {
		return
	}
	lbl := cp.c.composeLabels()
	var changed []int32
	for v := range lbl {
		if lbl[v] != cp.prev.Label(int32(v)) {
			changed = append(changed, int32(v))
		}
	}
	if len(changed) == 0 {
		return // another engine's recompose already integrated this change
	}
	cp.epoch++
	cur := snapshot.NewLabels(lbl, cp.epoch)
	d := &snapshot.Diff{Prev: cp.prev, Cur: cur, Changed: changed}
	cp.prev = cur
	for _, fn := range cp.subs {
		fn(0, d)
	}
}
