// Package shard scales the write path across partitioned epoch pipelines.
// The vertex space [0, n) is hash-partitioned across k shards; each shard
// owns an internal/engine pipeline (its own dispatcher, WAL fsync stream,
// snapshot labelling and checkpoint cycle) holding exactly the edges whose
// two endpoints both hash to that shard. Edges that straddle partitions go
// to one extra pipeline, the boundary engine, and global connectivity is
// answered in two levels: a pair is connected iff its endpoints' shard-local
// components are linked through the boundary graph — composed by a small
// union-find over (shard, component-id) keys (see index.go).
//
// The paper's batch-dynamic structure makes this decomposition clean:
// every engine is a full dynamic-connectivity structure over the same
// vertex universe, just over a disjoint subset of the edges, so each shard
// retains the paper's per-batch cost bounds while the k WAL streams fsync
// concurrently — the group-commit latency that bounds a single Batcher's
// write throughput overlaps across shards (benchconn e17 measures the
// scaling).
//
// Durability lives per shard: <dir>/shard-<i>/ and <dir>/boundary/ are
// ordinary engine durability directories (wal.log + checkpoints), restored
// independently on open, plus a tiny "shards" meta file pinning the shard
// count and vertex universe — the partition function is deterministic in
// (vertex, k), so the layout is only valid for the k it was written with.
//
//conn:durable-files
package shard

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/coalesce"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/wal"
)

// ErrClosed is returned by the Coordinator's methods once Close has begun.
var ErrClosed = errors.New("shard: coordinator is closed")

// Partition returns the shard in [0, k) that owns vertex u. It is a pure
// function of (u, k) — clients, servers and restores must agree on it, and
// a durability directory written under one k is only valid for that k.
// Fibonacci multiplicative hashing spreads consecutive vertex ids evenly.
func Partition(u int32, k int) int {
	if k <= 1 {
		return 0
	}
	return int((uint32(u) * 0x9E3779B1) % uint32(k))
}

// Options configure a Coordinator; the zero value selects the engine
// defaults.
type Options struct {
	// MaxBatch, MaxDelay and SnapshotThreshold are passed to every engine
	// (see engine.Options).
	MaxBatch          int
	MaxDelay          time.Duration
	SnapshotThreshold int
	// DurDir, when non-empty, roots the per-shard durability directories.
	// Existing state is restored; a fresh directory is initialized with a
	// meta file pinning (shards, n).
	DurDir string
	// WALCodec, GroupSyncK, GroupSyncMaxWait, GroupSyncAdaptive and
	// CheckpointEvery are the durability-pipeline knobs, applied uniformly
	// to every engine (see engine.Options). Ignored without DurDir.
	WALCodec          wal.Codec
	GroupSyncK        int
	GroupSyncMaxWait  time.Duration
	GroupSyncAdaptive bool
	CheckpointEvery   int
}

// Coordinator hash-partitions a vertex universe across k shard engines
// plus one boundary engine and presents the combined edge set as a single
// connectivity structure. All methods are safe from any number of
// goroutines. Mutating batches are routed per edge (intra-shard edges to
// their shard, cross-shard edges to the boundary engine); queries compose
// shard-local connectivity with the boundary graph through the published
// composition index.
//
// Consistency: queries are read-committed against each engine, and the
// cross-shard composition is rebuilt when any mutation has been
// acknowledged since the last build — a quiesced Coordinator (no mutation
// in flight) answers exactly. Mutations racing a query may be partially
// visible across shards; a caller that needs its own writes visible orders
// its query after its mutating call returns, exactly as with the Batcher's
// ReadNow tier.
type Coordinator struct {
	n int
	k int

	// engines[0..k-1] are the shard pipelines; engines[k] is the boundary
	// pipeline holding every cross-shard edge.
	engines []*engine.Engine

	// version counts acknowledged mutating batches; the composition index
	// caches the version it was built at and is rebuilt when stale.
	version atomic.Uint64

	buildMu sync.Mutex // serializes index rebuilds
	idx     atomic.Pointer[compIndex]

	// comp re-derives global labelling transitions from per-engine snapshot
	// diffs — the sharded connectivity-event feed (see events.go).
	comp *composer

	closed atomic.Bool
}

// metaFileName pins (shards, n) inside a sharded durability directory.
const metaFileName = "shards"

// New opens a Coordinator over n vertices and k shards. With a durability
// directory it is open-or-create: per-shard state that exists is restored
// (checkpoint + WAL replay, exactly engine.Restore) and fresh shards start
// empty; the meta file must agree with (k, n) if present. Panics never —
// all failures are errors, and any engines already opened are closed on
// the way out.
func New(n, k int, o Options) (*Coordinator, error) {
	if n <= 0 {
		return nil, fmt.Errorf("shard: New(n=%d): vertex count must be positive", n)
	}
	if k < 1 {
		return nil, fmt.Errorf("shard: New(shards=%d): shard count must be at least 1", k)
	}
	if o.DurDir != "" {
		if err := os.MkdirAll(o.DurDir, 0o755); err != nil {
			return nil, fmt.Errorf("shard: %w", err)
		}
		mk, mn, found, err := ReadMeta(o.DurDir)
		if err != nil {
			return nil, err
		}
		if found && (mk != k || mn != n) {
			return nil, fmt.Errorf("shard: directory %s was written with shards=%d n=%d, opened with shards=%d n=%d",
				o.DurDir, mk, mn, k, n)
		}
		if !found {
			if err := writeMeta(o.DurDir, k, n); err != nil {
				return nil, err
			}
		}
	}
	c := &Coordinator{n: n, k: k, engines: make([]*engine.Engine, k+1)}
	for i := 0; i <= k; i++ {
		dir := ""
		if o.DurDir != "" {
			dir = filepath.Join(o.DurDir, DirName(i, k))
		}
		cc, err := openCore(dir, n)
		if err == nil {
			c.engines[i], err = engine.New(cc, engine.Options{
				MaxBatch:          o.MaxBatch,
				MaxDelay:          o.MaxDelay,
				SnapshotThreshold: o.SnapshotThreshold,
				DurDir:            dir,
				WALCodec:          o.WALCodec,
				GroupSyncK:        o.GroupSyncK,
				GroupSyncMaxWait:  o.GroupSyncMaxWait,
				GroupSyncAdaptive: o.GroupSyncAdaptive,
				CheckpointEvery:   o.CheckpointEvery,
			})
		}
		if err != nil {
			for _, e := range c.engines[:i] {
				// Best-effort unwind; the open error is the one that matters.
				_ = e.Close()
			}
			return nil, fmt.Errorf("shard: opening %s: %w", DirName(i, k), err)
		}
	}
	c.initComposer()
	return c, nil
}

// DirName returns the durability subdirectory for engine i of a k-shard
// layout: shard-0 .. shard-<k-1>, then "boundary" for i == k. The server
// uses it to place per-shard replication hubs next to each engine's WAL.
func DirName(i, k int) string {
	if i == k {
		return "boundary"
	}
	return fmt.Sprintf("shard-%d", i)
}

// openCore restores the structure persisted in dir, or builds a fresh one
// when dir is empty/unset.
func openCore(dir string, n int) (*core.Conn, error) {
	if dir == "" {
		return core.New(n), nil
	}
	cc, err := engine.Restore(dir, func(n int) *core.Conn { return core.New(n) })
	if errors.Is(err, engine.ErrNoDurableState) {
		return core.New(n), nil
	}
	if err != nil {
		return nil, err
	}
	if cc.N() != n {
		return nil, fmt.Errorf("durable state has n=%d, want %d", cc.N(), n)
	}
	return cc, nil
}

// ReadMeta reports the (shards, n) a sharded durability directory was
// written with; found is false when the directory has no meta file (fresh,
// or written by an unsharded Batcher).
func ReadMeta(dir string) (k, n int, found bool, err error) {
	raw, err := os.ReadFile(filepath.Join(dir, metaFileName))
	if os.IsNotExist(err) {
		return 0, 0, false, nil
	}
	if err != nil {
		return 0, 0, false, fmt.Errorf("shard: reading meta: %w", err)
	}
	if _, err := fmt.Sscanf(string(raw), "shards %d n %d", &k, &n); err != nil || k < 1 || n < 1 {
		return 0, 0, false, fmt.Errorf("shard: corrupt meta file %s: %q", filepath.Join(dir, metaFileName), raw)
	}
	return k, n, true, nil
}

// writeMeta persists the (shards, n) pin with write-temp-then-rename so a
// crash never leaves a torn meta file.
func writeMeta(dir string, k, n int) error {
	path := filepath.Join(dir, metaFileName)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("shard: writing meta: %w", err)
	}
	if _, err = fmt.Fprintf(f, "shards %d n %d\n", k, n); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err == nil {
		err = wal.SyncDir(dir)
	}
	if err != nil {
		return fmt.Errorf("shard: writing meta: %w", err)
	}
	return nil
}

// N returns the vertex count.
func (c *Coordinator) N() int { return c.n }

// Shards returns the shard count k (the boundary engine is not counted).
func (c *Coordinator) Shards() int { return c.k }

// Engines returns the coordinator's pipelines: index 0..k-1 are the shard
// engines, index k the boundary engine. The slice is owned by the
// Coordinator and must not be mutated; entries satisfy repl.Source, which
// is how the server attaches one replication hub per shard.
func (c *Coordinator) Engines() []*engine.Engine { return c.engines }

// Durable reports whether the Coordinator was opened with a durability
// directory.
func (c *Coordinator) Durable() bool { return c.engines[0].Durable() }

func (c *Coordinator) checkRange(u, v int32) error {
	if n := int32(c.n); u < 0 || u >= n || v < 0 || v >= n {
		return fmt.Errorf("shard: vertex pair {%d, %d} out of range [0, %d)", u, v, n)
	}
	return nil
}

// engineFor routes one edge: intra-shard edges to their shard's engine,
// cross-shard edges to the boundary engine.
func (c *Coordinator) engineFor(u, v int32) int {
	su, sv := Partition(u, c.k), Partition(v, c.k)
	if su == sv {
		return su
	}
	return c.k
}

// Apply stages a mixed batch of insertions, deletions and queries and
// blocks until every operation has committed; one result per op,
// index-aligned (insert/delete credit, or the query's answer). Each edge
// routes to the engine that owns it, so the within-batch insert-then-
// delete composition of the Batcher holds per edge; queries are answered
// after every mutation in the batch has been acknowledged, against the
// post-batch state. Atomicity is per engine: a batch that spans shards
// commits as one epoch on each engine it touches, not as one global epoch.
func (c *Coordinator) Apply(ops []coalesce.Op) ([]bool, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	res := make([]bool, len(ops))
	per := make([][]coalesce.Op, c.k+1)
	perIdx := make([][]int, c.k+1)
	var qIdx []int
	var qs []graph.Edge
	mutated := false
	for i, op := range ops {
		if err := c.checkRange(op.U, op.V); err != nil {
			return nil, err
		}
		switch op.Kind {
		case coalesce.OpInsert, coalesce.OpDelete:
			e := c.engineFor(op.U, op.V)
			per[e] = append(per[e], op)
			perIdx[e] = append(perIdx[e], i)
			mutated = true
		case coalesce.OpQuery:
			qIdx = append(qIdx, i)
			qs = append(qs, graph.Edge{U: op.U, V: op.V})
		default:
			return nil, fmt.Errorf("shard: unknown op kind %d", op.Kind)
		}
	}
	// Scatter the mutation sub-batches to their engines first, then wait:
	// the k WAL fsyncs run concurrently, which is the point of sharding.
	type inflight struct {
		eng int
		fut coalesce.Future
	}
	var subs []inflight
	for e, list := range per {
		if len(list) == 0 {
			continue
		}
		f, err := c.engines[e].Submit(list)
		if err != nil {
			// Close raced in. Sub-batches already submitted still commit
			// via the engines' final sweeps — per-engine atomicity, not
			// global, exactly as documented.
			return nil, ErrClosed
		}
		subs = append(subs, inflight{e, f})
	}
	for _, s := range subs {
		for j, ok := range s.fut.Wait() {
			res[perIdx[s.eng][j]] = ok
		}
	}
	if mutated {
		c.version.Add(1)
	}
	if len(qIdx) > 0 {
		ans, err := c.ConnectedBatch(qs)
		if err != nil {
			return nil, err
		}
		for j, i := range qIdx {
			res[i] = ans[j]
		}
	}
	return res, nil
}

// Insert adds edge {u, v}; reports whether it was newly added.
func (c *Coordinator) Insert(u, v int32) (bool, error) {
	return c.one(coalesce.Op{Kind: coalesce.OpInsert, U: u, V: v})
}

// Delete removes edge {u, v}; reports whether it was removed.
func (c *Coordinator) Delete(u, v int32) (bool, error) {
	return c.one(coalesce.Op{Kind: coalesce.OpDelete, U: u, V: v})
}

// Connected reports whether u and v are connected in the combined graph.
func (c *Coordinator) Connected(u, v int32) (bool, error) {
	if err := c.checkRange(u, v); err != nil {
		return false, err
	}
	ans, err := c.ConnectedBatch([]graph.Edge{{U: u, V: v}})
	if err != nil {
		return false, err
	}
	return ans[0], nil
}

func (c *Coordinator) one(op coalesce.Op) (bool, error) {
	res, err := c.Apply([]coalesce.Op{op})
	if err != nil {
		return false, err
	}
	return res[0], nil
}

// Flush forces an epoch on every engine and blocks until everything staged
// before the call has committed on its shard.
func (c *Coordinator) Flush() {
	for _, e := range c.engines {
		e.Flush()
	}
}

// Checkpoint snapshots every engine's edge set into its shard directory
// and truncates the per-shard WALs, in shard order then boundary. Each
// engine's checkpoint is transactionally consistent with its own log; the
// set is not a global atomic cut, which is fine — restore replays each
// shard independently and the union is exactly the acknowledged edge set.
// Returns the snapshot paths.
func (c *Coordinator) Checkpoint() ([]string, error) {
	if !c.Durable() {
		return nil, errors.New("shard: Checkpoint on a Coordinator without durability")
	}
	paths := make([]string, 0, len(c.engines))
	for i, e := range c.engines {
		p, err := e.Checkpoint()
		if errors.Is(err, engine.ErrClosed) {
			return nil, ErrClosed
		}
		if err != nil {
			return nil, fmt.Errorf("shard: checkpoint %s: %w", DirName(i, c.k), err)
		}
		paths = append(paths, p)
	}
	return paths, nil
}

// Close commits everything staged, stops every dispatcher and closes the
// per-shard WALs. Idempotent; the joined error reports WAL-handle close
// failures (durable state is unaffected).
func (c *Coordinator) Close() error {
	c.closed.Store(true)
	var errs []error
	for i, e := range c.engines {
		if err := e.Close(); err != nil {
			errs = append(errs, fmt.Errorf("shard: closing %s: %w", DirName(i, c.k), err))
		}
	}
	return errors.Join(errs...)
}

// EngineStat is one engine's pipeline counters plus its durable log
// positions — the per-shard breakdown the server's stats surface and
// conncli print.
type EngineStat struct {
	Stats      engine.Stats
	WALSeq     uint64
	WALFloor   uint64
	AppliedSeq uint64
}

// ShardStats returns one EngineStat per pipeline: index 0..k-1 the shards,
// index k the boundary engine.
func (c *Coordinator) ShardStats() []EngineStat {
	out := make([]EngineStat, len(c.engines))
	for i, e := range c.engines {
		out[i] = EngineStat{
			Stats:      e.Stats(),
			WALSeq:     e.WALSeq(),
			WALFloor:   e.WALFloor(),
			AppliedSeq: e.AppliedSeq(),
		}
	}
	return out
}
