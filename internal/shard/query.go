// Sharded query composition: the coordinator answers the query layer's
// structural questions over the union of its engines' edge sets.
//
// Label-shaped queries (members / size / aggregate) scatter-gather: every
// engine's wait-free published labelling is collected and contracted into a
// global min-vertex labelling by a union-find over vertices — engine i's
// label lbl_i[v] asserts "v is connected to vertex lbl_i[v]", and the union
// of those assertions across engines is exactly the union graph's
// connectivity. Traversals (k-hop / tree path) are boundary-aware instead:
// the BFS neighbor enumerator unions the adjacency of the vertex's owning
// shard engine with the boundary engine's (the only two pipelines that can
// hold edges incident to it), so the frontier crosses partition borders
// transparently.
package shard

import (
	"repro/internal/core"
	"repro/internal/query"
)

// Query executes one structural query against the combined graph.
// Linearized mode flushes every engine first — each engine publishes its
// labelling inside epoch execution, before acknowledging, so the post-flush
// gather reflects every operation staged before the call. Recent mode reads
// whatever each engine last published: per-engine bounded staleness, no
// locks, no dispatcher. Result.Seq is always zero — a sharded namespace has
// k+1 WAL streams, not one durable position — matching the no-fence
// convention of its other read paths.
func (c *Coordinator) Query(req query.Request) (query.Result, error) {
	if c.closed.Load() {
		return query.Result{}, ErrClosed
	}
	if err := query.Validate(req, int32(c.n)); err != nil {
		return query.Result{}, err
	}
	if req.Linearized {
		c.Flush()
	}
	switch req.Kind {
	case query.KindKHop:
		verts := query.KHop(c.neighbors(false), int32(c.n), req.U, req.K)
		return query.Result{Found: true, Verts: verts, Size: uint64(len(verts))}, nil
	case query.KindPath:
		path, found := query.TreePath(c.neighbors(true), int32(c.n), req.U, req.V)
		return query.Result{Found: found, Verts: path, Size: uint64(len(path))}, nil
	}
	lbl := c.composeLabels()
	res := query.Result{Found: true}
	switch req.Kind {
	case query.KindMembers:
		m := lbl[req.U]
		for v, l := range lbl {
			if l == m {
				res.Verts = append(res.Verts, int32(v))
			}
		}
		res.Size = uint64(len(res.Verts))
	case query.KindSize:
		m := lbl[req.U]
		for _, l := range lbl {
			if l == m {
				res.Size++
			}
		}
	case query.KindAggregate:
		res.Count, res.Hist = query.Aggregate(lbl)
	}
	return res, nil
}

// neighbors returns the boundary-aware neighbor enumerator: edges incident
// to v can only live in v's shard engine (both endpoints hash there) or the
// boundary engine, so those two adjacency walks — each read-committed under
// its engine's read lock — cover v's full neighborhood. treeOnly restricts
// to spanning-forest edges; the union of per-engine forests preserves the
// union graph's connectivity, which is what makes the composed tree path
// exact.
func (c *Coordinator) neighbors(treeOnly bool) func(v int32, dst []int32) []int32 {
	return func(v int32, dst []int32) []int32 {
		for _, i := range [2]int{Partition(v, c.k), c.k} {
			_ = c.engines[i].Read(func(cc *core.Conn) {
				if treeOnly {
					dst = cc.TreeNeighbors(v, dst)
				} else {
					dst = cc.Neighbors(v, dst)
				}
			})
		}
		return dst
	}
}

// composeLabels gathers every engine's published labelling and contracts
// them into one global min-vertex labelling: union(v, lbl_i[v]) for every
// engine i and vertex v, with union-by-minimum so each class's root IS its
// minimum vertex. O((k+1)·n·α).
func (c *Coordinator) composeLabels() []int32 {
	n := c.n
	parent := make([]int32, n)
	for v := range parent {
		parent[v] = int32(v)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if ra < rb {
			parent[rb] = ra
		} else {
			parent[ra] = rb
		}
	}
	scratch := make([]int32, n)
	for _, e := range c.engines {
		e.Recent().CopyTo(scratch)
		for v := 0; v < n; v++ {
			if scratch[v] != int32(v) {
				union(int32(v), scratch[v])
			}
		}
	}
	out := make([]int32, n)
	for v := 0; v < n; v++ {
		out[v] = find(int32(v))
	}
	return out
}
