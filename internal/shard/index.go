// The composition index: two-level connectivity over partitioned engines.
//
// Within one shard, connectivity is the shard engine's own answer. Across
// shards, a path alternates shard-local segments with cross-shard (boundary)
// edges, so global connectivity is the transitive closure of a small
// bipartite contraction: one node per shard-local component that contains a
// boundary vertex, one node per boundary-graph component, an arc wherever a
// boundary vertex sits in both. The index materializes that closure as a
// union-find over (owner, component-id) keys, built from the boundary
// engine's live edge set — O(boundary vertices) work, independent of n and
// of the intra-shard edge counts.
//
// Invariant the build relies on: every vertex of a cross-shard edge appears
// in the boundary engine's spanning structure, and component ids are stable
// between the sampling reads of one build (reads are serialized against
// each engine's mutating phase; a mutation acknowledged mid-build bumps the
// coordinator version, so the possibly-torn index is discarded on the next
// lookup rather than trusted).

package shard

import (
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/unionfind"
)

// ckey identifies one contracted component: owner is a shard index in
// [0, k) for shard-local components or k for boundary-graph components,
// and cid is that engine's ComponentID for the component.
type ckey struct {
	owner int32
	cid   uint64
}

// compIndex is an immutable composition snapshot: class maps every
// contracted component that touches a boundary vertex to its global
// equivalence class. Built once, then published through an atomic pointer
// and shared by any number of readers — never mutated after publication.
//
//conn:published
type compIndex struct {
	// version is the coordinator mutation count the index was built at;
	// a lookup under a newer version discards and rebuilds.
	version uint64
	class   map[ckey]int32
}

// connected composes two endpoints' shard-component keys: connected across
// the boundary iff both components are linked to the boundary graph and
// share an equivalence class. A key absent from the index belongs to a
// component with no boundary vertex, which cannot reach any other shard.
func (x *compIndex) connected(a, b ckey) bool {
	ca, ok := x.class[a]
	if !ok {
		return false
	}
	cb, ok := x.class[b]
	if !ok {
		return false
	}
	return ca == cb
}

// index returns a composition snapshot no older than the last acknowledged
// mutation, rebuilding under buildMu if the cached one is stale.
func (c *Coordinator) index() (*compIndex, error) {
	v := c.version.Load()
	if idx := c.idx.Load(); idx != nil && idx.version == v {
		return idx, nil
	}
	c.buildMu.Lock()
	defer c.buildMu.Unlock()
	// Re-sample under the lock: a concurrent builder may have published a
	// fresh-enough index while we waited. The version is read BEFORE the
	// engine state — a mutation landing mid-build advances the counter
	// past v and invalidates this build on the next lookup, never leaving
	// a too-new version stamped on too-old state.
	v = c.version.Load()
	if idx := c.idx.Load(); idx != nil && idx.version == v {
		return idx, nil
	}
	idx, err := c.buildIndex(v)
	if err != nil {
		return nil, err
	}
	c.publishIndex(idx)
	return idx, nil
}

// publishIndex is the designated store point for the composition snapshot.
//
//conn:publish-helper
func (c *Coordinator) publishIndex(idx *compIndex) { c.idx.Store(idx) }

// buildIndex contracts the current boundary graph against the shard-local
// component structure. All reads are read-committed per engine.
func (c *Coordinator) buildIndex(version uint64) (*compIndex, error) {
	// 1. The boundary vertex set: endpoints of every live cross-shard edge.
	var verts []int32
	bcid := make(map[int32]uint64)
	if err := c.engines[c.k].Read(func(cc *core.Conn) {
		edges := cc.SpanningForest()
		edges = append(edges, cc.NonTreeEdges()...)
		for _, e := range edges {
			for _, x := range [2]int32{e.U, e.V} {
				if _, ok := bcid[x]; !ok {
					bcid[x] = cc.ComponentID(x)
					verts = append(verts, x)
				}
			}
		}
	}); err != nil {
		return nil, ErrClosed
	}
	// 2. Each boundary vertex's shard-local component id, sampled per shard.
	perShard := make([][]int32, c.k)
	for _, x := range verts {
		s := Partition(x, c.k)
		perShard[s] = append(perShard[s], x)
	}
	scid := make(map[int32]uint64, len(verts))
	for s, vs := range perShard {
		if len(vs) == 0 {
			continue
		}
		if err := c.engines[s].Read(func(cc *core.Conn) {
			for _, x := range vs {
				scid[x] = cc.ComponentID(x)
			}
		}); err != nil {
			return nil, ErrClosed
		}
	}
	// 3. Contract: union each boundary vertex's shard component with its
	// boundary component, then freeze the equivalence classes.
	ids := make(map[ckey]int32, 2*len(verts))
	id := func(k ckey) int32 {
		if v, ok := ids[k]; ok {
			return v
		}
		v := int32(len(ids))
		ids[k] = v
		return v
	}
	uf := unionfind.New(2 * len(verts))
	for _, x := range verts {
		sk := ckey{owner: int32(Partition(x, c.k)), cid: scid[x]}
		bk := ckey{owner: int32(c.k), cid: bcid[x]}
		uf.Union(id(sk), id(bk))
	}
	class := make(map[ckey]int32, len(ids))
	for k, i := range ids {
		class[k] = uf.Find(i)
	}
	return &compIndex{version: version, class: class}, nil
}

// ConnectedBatch answers k connectivity queries against the combined graph:
// the same-shard fast path asks the owning engine directly (one
// read-committed batch per shard), and anything unresolved — cross-shard
// pairs, plus same-shard pairs connected only through other shards —
// composes shard-local component ids with the boundary union-find.
func (c *Coordinator) ConnectedBatch(qs []graph.Edge) ([]bool, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	for _, q := range qs {
		if err := c.checkRange(q.U, q.V); err != nil {
			return nil, err
		}
	}
	idx, err := c.index()
	if err != nil {
		return nil, err
	}
	out := make([]bool, len(qs))
	per := make([][]graph.Edge, c.k)
	perIdx := make([][]int, c.k)
	var rest []int
	for i, q := range qs {
		if q.U == q.V {
			out[i] = true
			continue
		}
		if su, sv := Partition(q.U, c.k), Partition(q.V, c.k); su == sv {
			per[su] = append(per[su], q)
			perIdx[su] = append(perIdx[su], i)
		} else {
			rest = append(rest, i)
		}
	}
	for s := 0; s < c.k; s++ {
		if len(per[s]) == 0 {
			continue
		}
		bits, err := c.engines[s].ReadNowBatch(per[s])
		if err != nil {
			return nil, ErrClosed
		}
		for j, ok := range bits {
			if ok {
				out[perIdx[s][j]] = true
			} else {
				// Not connected within the shard — may still be connected
				// through the boundary graph.
				rest = append(rest, perIdx[s][j])
			}
		}
	}
	if len(rest) == 0 {
		return out, nil
	}
	// Sample the unresolved endpoints' shard-local component ids, batched
	// per shard so each engine is read once.
	need := make([][]int32, c.k)
	seen := make(map[int32]struct{}, 2*len(rest))
	for _, i := range rest {
		for _, x := range [2]int32{qs[i].U, qs[i].V} {
			if _, ok := seen[x]; !ok {
				seen[x] = struct{}{}
				s := Partition(x, c.k)
				need[s] = append(need[s], x)
			}
		}
	}
	cid := make(map[int32]uint64, len(seen))
	for s, vs := range need {
		if len(vs) == 0 {
			continue
		}
		if err := c.engines[s].Read(func(cc *core.Conn) {
			for _, x := range vs {
				cid[x] = cc.ComponentID(x)
			}
		}); err != nil {
			return nil, ErrClosed
		}
	}
	for _, i := range rest {
		u, v := qs[i].U, qs[i].V
		ku := ckey{owner: int32(Partition(u, c.k)), cid: cid[u]}
		kv := ckey{owner: int32(Partition(v, c.k)), cid: cid[v]}
		out[i] = idx.connected(ku, kv)
	}
	return out, nil
}
