// Package spanning computes a static spanning forest of a batch of edges in
// parallel. The paper invokes Gazit's optimal randomized connectivity
// algorithm for this step; we substitute a CAS-based parallel union-find
// sweep (randomized linking, path halving), which does O(k α(k)) ≈ O(k)
// expected work on a batch of k edges and parallelizes well — the only
// properties the connectivity algorithm relies on.
//
// The input edges are given over an arbitrary vertex universe (the
// algorithm passes component representatives); Forest first relabels the
// endpoints densely via a local map, then runs the union sweep.
package spanning

import (
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/unionfind"
)

// Result is the output of Forest: for each input edge index, whether it was
// chosen as a spanning-forest edge, plus the component label of every
// distinct endpoint (labels are indices into Verts).
type Result struct {
	Chosen []bool         // per input edge
	Verts  []uint64       // distinct endpoint ids, densely labelled 0..len-1
	Label  map[uint64]int // endpoint id -> dense label of its component root
}

// Forest computes a spanning forest over edges whose endpoints are opaque
// uint64 ids. Self-loops are never chosen. Deterministic choice among
// parallel candidates is not guaranteed (any maximal forest is valid).
func Forest(us, vs []uint64) Result {
	k := len(us)
	res := Result{Chosen: make([]bool, k), Label: make(map[uint64]int, 2*k)}
	if k == 0 {
		return res
	}
	// Dense relabelling (sequential map build; O(k)).
	id := make(map[uint64]int32, 2*k)
	for i := 0; i < k; i++ {
		if _, ok := id[us[i]]; !ok {
			id[us[i]] = int32(len(res.Verts))
			res.Verts = append(res.Verts, us[i])
		}
		if _, ok := id[vs[i]]; !ok {
			id[vs[i]] = int32(len(res.Verts))
			res.Verts = append(res.Verts, vs[i])
		}
	}
	n := len(res.Verts)
	uf := unionfind.NewConcurrent(n)
	a := make([]int32, k)
	b := make([]int32, k)
	parallel.For(k, 2048, func(i int) {
		a[i] = id[us[i]]
		b[i] = id[vs[i]]
	})
	// Parallel union sweep: an edge is chosen iff its Union performed the
	// link. Concurrent unions on the same pair race benignly — exactly one
	// wins — so the chosen set is a maximal spanning forest.
	parallel.For(k, 64, func(i int) {
		if a[i] != b[i] && uf.Union(a[i], b[i]) {
			res.Chosen[i] = true
		}
	})
	// Final labels after quiescence (map fill is sequential; the Find
	// sweep above is the parallel part).
	labels := make([]int32, n)
	parallel.For(n, 2048, func(i int) { labels[i] = uf.Find(int32(i)) })
	for i := 0; i < n; i++ {
		res.Label[res.Verts[i]] = int(labels[i])
	}
	return res
}

// ForestEdges is a convenience wrapper for graph.Edge batches over vertex
// ids; it returns the indices of the chosen edges.
func ForestEdges(es []graph.Edge) []int {
	us := make([]uint64, len(es))
	vs := make([]uint64, len(es))
	for i, e := range es {
		us[i] = uint64(uint32(e.U))
		vs[i] = uint64(uint32(e.V))
	}
	r := Forest(us, vs)
	return parallel.PackIndex(len(es), func(i int) bool { return r.Chosen[i] })
}
