package spanning

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/unionfind"
)

func TestForestEmpty(t *testing.T) {
	r := Forest(nil, nil)
	if len(r.Chosen) != 0 || len(r.Verts) != 0 {
		t.Fatal("empty input should produce empty result")
	}
}

func TestForestPath(t *testing.T) {
	us := []uint64{1, 2, 3}
	vs := []uint64{2, 3, 4}
	r := Forest(us, vs)
	chosen := 0
	for _, c := range r.Chosen {
		if c {
			chosen++
		}
	}
	if chosen != 3 {
		t.Fatalf("path of 3 edges: chose %d, want 3", chosen)
	}
	if r.Label[1] != r.Label[4] {
		t.Fatal("endpoints of path not in one component")
	}
}

func TestForestCycleDropsOneEdge(t *testing.T) {
	us := []uint64{1, 2, 3}
	vs := []uint64{2, 3, 1}
	r := Forest(us, vs)
	chosen := 0
	for _, c := range r.Chosen {
		if c {
			chosen++
		}
	}
	if chosen != 2 {
		t.Fatalf("triangle: chose %d edges, want 2", chosen)
	}
}

func TestForestParallelEdgesAndLoops(t *testing.T) {
	us := []uint64{1, 1, 1, 5}
	vs := []uint64{2, 2, 2, 5}
	r := Forest(us, vs)
	chosen := 0
	for _, c := range r.Chosen {
		if c {
			chosen++
		}
	}
	if chosen != 1 {
		t.Fatalf("parallel edges + loop: chose %d, want 1", chosen)
	}
	if r.Label[1] != r.Label[2] || r.Label[1] == r.Label[5] {
		t.Fatal("labels wrong")
	}
}

func TestForestMatchesSequentialComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		k := 1 + rng.Intn(500)
		n := 1 + rng.Intn(100)
		us := make([]uint64, k)
		vs := make([]uint64, k)
		for i := 0; i < k; i++ {
			us[i] = uint64(rng.Intn(n)) * 7 // sparse ids
			vs[i] = uint64(rng.Intn(n)) * 7
		}
		r := Forest(us, vs)
		// Sequential oracle over dense labels.
		uf := unionfind.New(len(r.Verts))
		id := make(map[uint64]int32)
		for i, v := range r.Verts {
			id[v] = int32(i)
		}
		chosen := 0
		for i := 0; i < k; i++ {
			if uf.Union(id[us[i]], id[vs[i]]) {
				chosen++
			}
		}
		got := 0
		for _, c := range r.Chosen {
			if c {
				got++
			}
		}
		if got != chosen {
			t.Fatalf("trial %d: chose %d edges, oracle says forest size %d", trial, got, chosen)
		}
		// Labels must agree with oracle connectivity.
		for i := 0; i < k; i++ {
			same := uf.Connected(id[us[i]], id[vs[i]])
			if same != (r.Label[us[i]] == r.Label[vs[i]]) {
				t.Fatalf("trial %d: label disagreement on edge %d", trial, i)
			}
		}
		// Chosen edges must themselves form a forest (acyclic).
		check := unionfind.New(len(r.Verts))
		for i := 0; i < k; i++ {
			if r.Chosen[i] && !check.Union(id[us[i]], id[vs[i]]) {
				t.Fatalf("trial %d: chosen edges contain a cycle", trial)
			}
		}
	}
}

func TestForestEdgesWrapper(t *testing.T) {
	es := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 3, V: 4}}
	idx := ForestEdges(es)
	if len(idx) != 3 {
		t.Fatalf("ForestEdges chose %d, want 3", len(idx))
	}
}

func TestQuickForestProperties(t *testing.T) {
	f := func(pairs []uint16) bool {
		if len(pairs) < 2 {
			return true
		}
		k := len(pairs) / 2
		us := make([]uint64, k)
		vs := make([]uint64, k)
		for i := 0; i < k; i++ {
			us[i] = uint64(pairs[2*i] % 40)
			vs[i] = uint64(pairs[2*i+1] % 40)
		}
		r := Forest(us, vs)
		// Property 1: chosen edges acyclic.
		id := make(map[uint64]int32)
		for i, v := range r.Verts {
			id[v] = int32(i)
		}
		uf := unionfind.New(len(r.Verts))
		for i := 0; i < k; i++ {
			if r.Chosen[i] {
				if us[i] == vs[i] {
					return false // self-loop chosen
				}
				if !uf.Union(id[us[i]], id[vs[i]]) {
					return false // cycle
				}
			}
		}
		// Property 2: maximality — every unchosen edge is within a component.
		for i := 0; i < k; i++ {
			if !r.Chosen[i] && us[i] != vs[i] && !uf.Connected(id[us[i]], id[vs[i]]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialUF(t *testing.T) {
	u := New5()
	_ = u
}

// New5 exercises the sequential union-find directly.
func New5() *unionfind.UF {
	u := unionfind.New(5)
	if u.Components() != 5 {
		panic("components != 5")
	}
	u.Union(0, 1)
	u.Union(1, 2)
	if !u.Connected(0, 2) || u.Connected(0, 3) {
		panic("sequential UF wrong")
	}
	if u.Union(0, 2) {
		panic("re-union should return false")
	}
	if u.Components() != 3 {
		panic("components != 3")
	}
	return u
}

func TestConcurrentUFStress(t *testing.T) {
	n := 1 << 12
	c := unionfind.NewConcurrent(n)
	// Union a perfect matching then chains, concurrently via spanning.Forest
	// is covered elsewhere; here hammer Union directly.
	for i := 0; i < n-1; i += 2 {
		c.Union(int32(i), int32(i+1))
	}
	for i := 0; i < n; i += 2 {
		if !c.SameSet(int32(i), int32(i+1)) {
			t.Fatalf("pair %d not merged", i)
		}
	}
	if c.SameSet(0, 2) {
		t.Fatal("unexpected merge")
	}
}
