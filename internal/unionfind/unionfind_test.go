package unionfind

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestSequentialBasics(t *testing.T) {
	u := New(6)
	if u.Components() != 6 {
		t.Fatalf("Components = %d", u.Components())
	}
	if !u.Union(0, 1) || !u.Union(2, 3) {
		t.Fatal("fresh unions should link")
	}
	if u.Union(1, 0) {
		t.Fatal("re-union should not link")
	}
	if !u.Connected(0, 1) || u.Connected(0, 2) {
		t.Fatal("connectivity wrong")
	}
	u.Union(1, 3)
	if !u.Connected(0, 2) {
		t.Fatal("transitive union failed")
	}
	if u.Components() != 3 {
		t.Fatalf("Components = %d", u.Components())
	}
}

func TestSequentialChainDepth(t *testing.T) {
	n := 1 << 16
	u := New(n)
	for i := 1; i < n; i++ {
		u.Union(int32(i-1), int32(i))
	}
	// With rank + halving, Find must not blow the stack and stays fast.
	if u.Find(0) != u.Find(int32(n-1)) {
		t.Fatal("chain not connected")
	}
	if u.Components() != 1 {
		t.Fatal("components wrong")
	}
}

func TestConcurrentMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := 2000
	type pair struct{ a, b int32 }
	var ops []pair
	for i := 0; i < 4000; i++ {
		ops = append(ops, pair{int32(rng.Intn(n)), int32(rng.Intn(n))})
	}
	seq := New(n)
	for _, p := range ops {
		seq.Union(p.a, p.b)
	}
	con := NewConcurrent(n)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(ops); i += 8 {
				con.Union(ops[i].a, ops[i].b)
			}
		}(w)
	}
	wg.Wait()
	for trial := 0; trial < 4000; trial++ {
		a := int32(rng.Intn(n))
		b := int32(rng.Intn(n))
		if seq.Connected(a, b) != con.SameSet(a, b) {
			t.Fatalf("disagreement on (%d,%d)", a, b)
		}
	}
}

func TestQuickPartitionValid(t *testing.T) {
	f := func(pairs []uint16) bool {
		n := 64
		u := New(n)
		links := 0
		for i := 0; i+1 < len(pairs); i += 2 {
			if u.Union(int32(pairs[i]%uint16(n)), int32(pairs[i+1]%uint16(n))) {
				links++
			}
		}
		// Components + links must always equal n.
		return u.Components()+links == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentUnionReturnValue(t *testing.T) {
	c := NewConcurrent(4)
	if !c.Union(0, 1) {
		t.Fatal("first union should link")
	}
	if c.Union(1, 0) {
		t.Fatal("repeat union should not link")
	}
	if !c.Union(2, 3) || !c.Union(0, 3) {
		t.Fatal("unions failed")
	}
	if !c.SameSet(1, 2) {
		t.Fatal("all should be one set")
	}
}
