// Package unionfind provides two disjoint-set structures: a fast sequential
// one (union by rank, path halving) used as a correctness oracle and as the
// incremental-connectivity baseline of Simsiri et al. (Euro-Par 2016), and a
// concurrent CAS-based one (randomized linking by index, path halving) used
// inside the parallel spanning-forest substrate.
package unionfind

import (
	"sync/atomic"

	"repro/internal/parallel"
)

// UF is the sequential disjoint-set structure.
type UF struct {
	parent []int32
	rank   []int8
	comps  int
}

// New creates n singleton sets.
func New(n int) *UF {
	u := &UF{parent: make([]int32, n), rank: make([]int8, n), comps: n}
	for i := range u.parent {
		u.parent[i] = int32(i)
	}
	return u
}

// Find returns the representative of x with path halving.
func (u *UF) Find(x int32) int32 {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// Union merges the sets of a and b; reports whether they were distinct.
func (u *UF) Union(a, b int32) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	u.comps--
	return true
}

// Connected reports whether a and b share a set.
func (u *UF) Connected(a, b int32) bool { return u.Find(a) == u.Find(b) }

// Components returns the number of disjoint sets.
func (u *UF) Components() int { return u.comps }

// Concurrent is a lock-free disjoint-set structure safe for concurrent
// Union/Find. Linking is by index order (larger root points to smaller),
// which with random vertex ids gives O(lg n) expected height; path halving
// keeps practical depths tiny.
type Concurrent struct {
	parent []atomic.Int32
}

// NewConcurrent creates n singleton sets.
func NewConcurrent(n int) *Concurrent {
	c := &Concurrent{parent: make([]atomic.Int32, n)}
	parallel.For(n, 8192, func(i int) { c.parent[i].Store(int32(i)) })
	return c
}

// Find returns the current representative of x. Concurrent unions may change
// representatives; callers synchronize at batch boundaries.
func (c *Concurrent) Find(x int32) int32 {
	for {
		p := c.parent[x].Load()
		if p == x {
			return x
		}
		gp := c.parent[p].Load()
		if gp != p {
			c.parent[x].CompareAndSwap(p, gp) // path halving; failure is benign
		}
		x = p
	}
}

// Union merges the sets containing a and b; reports whether it performed the
// link (false if already connected at link time).
func (c *Concurrent) Union(a, b int32) bool {
	for {
		ra, rb := c.Find(a), c.Find(b)
		if ra == rb {
			return false
		}
		if ra < rb {
			ra, rb = rb, ra
		}
		// ra > rb: link larger index under smaller.
		if c.parent[ra].CompareAndSwap(ra, rb) {
			return true
		}
	}
}

// SameSet reports whether a and b are currently in one set (quiescent use).
func (c *Concurrent) SameSet(a, b int32) bool { return c.Find(a) == c.Find(b) }
