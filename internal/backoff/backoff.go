// Package backoff is the one exponential-backoff implementation shared by
// everything in the replication path that retries — the follower's
// reconnect loop, the client's per-replica failure timeout, and the
// replica manager's primary discovery. Centralizing it means a tuning
// change (or adding jitter against reconnect thundering herds) lands
// everywhere at once instead of in three hand-rolled copies.
package backoff

import "time"

// B is a capped exponential backoff: Next returns Min, 2·Min, 4·Min, …
// capped at Max; Reset snaps back to Min after a success. The zero value is
// unusable — construct with New.
type B struct {
	min, max time.Duration
	cur      time.Duration
}

// New returns a backoff doubling from min up to max. min must be positive;
// max below min is raised to min.
func New(min, max time.Duration) *B {
	if min <= 0 {
		min = time.Millisecond
	}
	if max < min {
		max = min
	}
	return &B{min: min, max: max}
}

// Next returns the delay to wait before the upcoming retry and advances
// the sequence.
func (b *B) Next() time.Duration {
	if b.cur == 0 {
		b.cur = b.min
	}
	d := b.cur
	if b.cur *= 2; b.cur > b.max {
		b.cur = b.max
	}
	return d
}

// Reset returns the sequence to its starting delay — call after a success.
func (b *B) Reset() { b.cur = 0 }
