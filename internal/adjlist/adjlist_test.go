package adjlist

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func rec(u, v graph.Vertex, lvl int32, tree bool) *Rec {
	return &Rec{E: graph.Edge{U: u, V: v}.Canon(), Level: lvl, IsTree: tree}
}

func TestInsertFetchDelete(t *testing.T) {
	s := New(10, 4)
	r1 := rec(1, 2, 3, false)
	r2 := rec(1, 5, 3, false)
	r3 := rec(1, 7, 2, false)
	s.Insert(r1)
	s.Insert(r2)
	s.Insert(r3)
	if got := s.Count(1, 3, false); got != 2 {
		t.Fatalf("Count(1,3) = %d, want 2", got)
	}
	if got := s.Count(1, 2, false); got != 1 {
		t.Fatalf("Count(1,2) = %d, want 1", got)
	}
	if got := s.Count(2, 3, false); got != 1 {
		t.Fatalf("Count(2,3) = %d, want 1", got)
	}
	f := s.Fetch(1, 3, false, 10)
	if len(f) != 2 {
		t.Fatalf("Fetch returned %d recs", len(f))
	}
	s.Delete(r1)
	if got := s.Count(1, 3, false); got != 1 {
		t.Fatalf("Count after delete = %d", got)
	}
	if got := s.Count(2, 3, false); got != 0 {
		t.Fatalf("other endpoint count after delete = %d", got)
	}
	if err := s.CheckInvariants(1); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteMiddleFixesPositions(t *testing.T) {
	s := New(10, 1)
	var recs []*Rec
	for v := graph.Vertex(1); v <= 5; v++ {
		r := rec(0, v, 0, false)
		recs = append(recs, r)
		s.Insert(r)
	}
	// Delete the middle one; the last should be swapped into its place.
	s.Delete(recs[2])
	if got := s.Count(0, 0, false); got != 4 {
		t.Fatalf("Count = %d", got)
	}
	for _, u := range []graph.Vertex{0, 1, 2, 3, 4, 5} {
		if err := s.CheckInvariants(u); err != nil {
			t.Fatalf("vertex %d: %v", u, err)
		}
	}
	// Delete the rest in arbitrary order.
	for _, i := range []int{4, 0, 3, 1} {
		s.Delete(recs[i])
	}
	if got := s.Count(0, 0, false); got != 0 {
		t.Fatalf("Count after all deletes = %d", got)
	}
}

func TestTreeAndNonTreeListsSeparate(t *testing.T) {
	s := New(4, 2)
	rt := rec(0, 1, 1, true)
	rn := rec(0, 1, 1, false)
	s.Insert(rt)
	s.Insert(rn)
	if s.Count(0, 1, true) != 1 || s.Count(0, 1, false) != 1 {
		t.Fatal("tree/non-tree lists not separate")
	}
	got := s.Fetch(0, 1, true, 5)
	if len(got) != 1 || !got[0].IsTree {
		t.Fatal("Fetch(tree) returned wrong records")
	}
}

func TestFetchTruncates(t *testing.T) {
	s := New(4, 1)
	for v := graph.Vertex(1); v <= 3; v++ {
		s.Insert(rec(0, v, 0, false))
	}
	if got := s.Fetch(0, 0, false, 2); len(got) != 2 {
		t.Fatalf("Fetch(2) = %d recs", len(got))
	}
	if got := s.Fetch(0, 0, false, 99); len(got) != 3 {
		t.Fatalf("Fetch(99) = %d recs", len(got))
	}
	if got := s.Fetch(3, 0, true, 1); len(got) != 0 {
		t.Fatalf("Fetch on empty list = %d recs", len(got))
	}
	if got := s.All(0, 0, false); len(got) != 3 {
		t.Fatalf("All = %d recs", len(got))
	}
}

func TestBatchInsertDeltas(t *testing.T) {
	s := New(8, 3)
	recs := []*Rec{
		rec(0, 1, 2, false),
		rec(0, 2, 2, false),
		rec(0, 3, 1, true),
		rec(4, 5, 2, false),
	}
	deltas := s.BatchInsert(recs)
	byVL := map[[2]int32][2]int64{}
	for _, d := range deltas {
		k := [2]int32{int32(d.V), d.Level}
		cur := byVL[k]
		byVL[k] = [2]int64{cur[0] + d.Tree, cur[1] + d.NonTree}
	}
	checks := []struct {
		v, lvl int32
		tr, nt int64
	}{
		{0, 2, 0, 2}, {0, 1, 1, 0}, {1, 2, 0, 1}, {2, 2, 0, 1},
		{3, 1, 1, 0}, {4, 2, 0, 1}, {5, 2, 0, 1},
	}
	for _, c := range checks {
		got := byVL[[2]int32{c.v, c.lvl}]
		if got[0] != c.tr || got[1] != c.nt {
			t.Fatalf("delta v=%d lvl=%d = %v, want {%d %d}", c.v, c.lvl, got, c.tr, c.nt)
		}
	}
	if s.Count(0, 2, false) != 2 || s.Count(0, 1, true) != 1 {
		t.Fatal("counts after batch insert wrong")
	}
}

func TestBatchDeleteInvertsBatchInsert(t *testing.T) {
	s := New(8, 2)
	recs := []*Rec{
		rec(0, 1, 0, false), rec(1, 2, 0, false), rec(2, 3, 1, true),
	}
	s.BatchInsert(recs)
	deltas := s.BatchDelete(recs)
	total := int64(0)
	for _, d := range deltas {
		total += d.Tree + d.NonTree
	}
	if total != -6 { // 3 records × 2 endpoints, all decrements
		t.Fatalf("delete deltas sum = %d, want -6", total)
	}
	for u := graph.Vertex(0); u < 4; u++ {
		for lvl := int32(0); lvl < 2; lvl++ {
			if s.Count(u, lvl, false)+s.Count(u, lvl, true) != 0 {
				t.Fatalf("residual edges at v=%d lvl=%d", u, lvl)
			}
		}
	}
}

func TestBatchRandomizedAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 50
	s := New(n, 3)
	type slot struct {
		rec  *Rec
		live bool
	}
	var slots []slot
	for round := 0; round < 30; round++ {
		// Insert a random batch.
		var batch []*Rec
		for i := 0; i < 40; i++ {
			u := graph.Vertex(rng.Intn(n))
			v := graph.Vertex(rng.Intn(n))
			if u == v {
				continue
			}
			r := rec(u, v, int32(rng.Intn(3)), rng.Intn(2) == 0)
			batch = append(batch, r)
			slots = append(slots, slot{r, true})
		}
		s.BatchInsert(batch)
		// Delete a random live subset.
		var del []*Rec
		for i := range slots {
			if slots[i].live && rng.Intn(3) == 0 {
				del = append(del, slots[i].rec)
				slots[i].live = false
			}
		}
		s.BatchDelete(del)
		// Model check: per-(vertex,level,tree) counts.
		type key struct {
			v    graph.Vertex
			lvl  int32
			tree bool
		}
		want := map[key]int{}
		for _, sl := range slots {
			if !sl.live {
				continue
			}
			r := sl.rec
			want[key{r.E.U, r.Level, r.IsTree}]++
			want[key{r.E.V, r.Level, r.IsTree}]++
		}
		for v := graph.Vertex(0); v < graph.Vertex(n); v++ {
			if err := s.CheckInvariants(v); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			for lvl := int32(0); lvl < 3; lvl++ {
				for _, tr := range []bool{true, false} {
					if got := s.Count(v, lvl, tr); got != want[key{v, lvl, tr}] {
						t.Fatalf("round %d v=%d lvl=%d tree=%v: count %d want %d",
							round, v, lvl, tr, got, want[key{v, lvl, tr}])
					}
				}
			}
		}
	}
}

func TestGraphEdgeHelpers(t *testing.T) {
	e := graph.Edge{U: 5, V: 2}
	c := e.Canon()
	if c.U != 2 || c.V != 5 {
		t.Fatalf("Canon = %v", c)
	}
	if graph.FromKey(e.Key()) != c {
		t.Fatal("FromKey(Key) mismatch")
	}
	if e.Other(5) != 2 || e.Other(2) != 5 {
		t.Fatal("Other wrong")
	}
	d := graph.Dedup([]graph.Edge{{U: 1, V: 2}, {U: 2, V: 1}, {U: 3, V: 3}, {U: 1, V: 2}})
	if len(d) != 1 || d[0] != (graph.Edge{U: 1, V: 2}) {
		t.Fatalf("Dedup = %v", d)
	}
}
