package adjlist

import (
	"sync"
	"testing"

	"repro/internal/graph"
)

// TestConcurrentReadOnlyQueries enforces the package's read-only query
// contract under -race: with no batch mutation in flight, any number of
// goroutines may run Count, Fetch, All and CheckInvariants concurrently on
// the same store. The Batcher relies on this — execEpoch's credit pre-scans
// and the durable checkpoint's edge enumeration walk adjacency state while
// ReadNow readers are live. Any hidden write in these paths (lazy
// allocation, position repair, caching) would be flagged by the race
// detector.
func TestConcurrentReadOnlyQueries(t *testing.T) {
	const n = 512
	const levels = 4
	s := New(n, levels)
	var recs []*Rec
	for lvl := int32(0); lvl < levels; lvl++ {
		for i := int32(0); i < n-1; i += lvl + 1 {
			r := &Rec{E: graph.Edge{U: i, V: i + 1}, Level: lvl, IsTree: i%2 == 0}
			recs = append(recs, r)
		}
	}
	s.BatchInsert(recs)

	// Expected per-(vertex, level, tree) counts, computed up front.
	type cell struct {
		v    graph.Vertex
		lvl  int32
		tree bool
	}
	want := map[cell]int{}
	for _, r := range recs {
		want[cell{r.E.U, r.Level, r.IsTree}]++
		want[cell{r.E.V, r.Level, r.IsTree}]++
	}

	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for u := graph.Vertex(g); u < n; u += goroutines {
				for lvl := int32(0); lvl < levels; lvl++ {
					for _, isTree := range []bool{true, false} {
						w := want[cell{u, lvl, isTree}]
						if got := s.Count(u, lvl, isTree); got != w {
							t.Errorf("Count(%d,%d,%v) = %d, want %d", u, lvl, isTree, got, w)
							return
						}
						all := s.All(u, lvl, isTree)
						if len(all) != w {
							t.Errorf("All(%d,%d,%v) len %d, want %d", u, lvl, isTree, len(all), w)
							return
						}
						for _, r := range all {
							if r.E.U != u && r.E.V != u {
								t.Errorf("All(%d,...) returned foreign record %v", u, r.E)
								return
							}
						}
						if half := s.Fetch(u, lvl, isTree, w/2); len(half) != w/2 {
							t.Errorf("Fetch(%d,%d,%v,%d) len %d", u, lvl, isTree, w/2, len(half))
							return
						}
					}
				}
				if err := s.CheckInvariants(u); err != nil {
					t.Errorf("CheckInvariants(%d): %v", u, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
