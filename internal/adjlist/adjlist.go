// Package adjlist implements the adjacency structure of Appendix 8: for each
// vertex and each level, two resizable arrays (tree edges and non-tree edges)
// supporting batch insertion, batch deletion and fetching the first l edges,
// at O(1) amortized work per edge. Each edge record stores its positions in
// the arrays of both endpoints so deletion is a swap-with-last.
package adjlist

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/parallel"
)

// Rec is the shared record for one edge at one level. A Rec lives in exactly
// two arrays: the (Level, IsTree) list of E.U and of E.V. PosU/PosV are its
// indices there.
type Rec struct {
	E      graph.Edge // canonical orientation (U < V)
	Level  int32
	IsTree bool
	PosU   int32
	PosV   int32
}

func (r *Rec) pos(x graph.Vertex) int32 {
	if x == r.E.U {
		return r.PosU
	}
	return r.PosV
}

func (r *Rec) setPos(x graph.Vertex, p int32) {
	if x == r.E.U {
		r.PosU = p
	} else {
		r.PosV = p
	}
}

// lists holds the two per-(vertex, level) arrays.
type lists struct {
	tree    []*Rec
	nonTree []*Rec
}

func (l *lists) arr(isTree bool) *[]*Rec {
	if isTree {
		return &l.tree
	}
	return &l.nonTree
}

type perVertex struct {
	lv []lists // indexed by level; allocated on first touch
}

// Store is the full adjacency structure: n vertices × levels levels.
type Store struct {
	levels int
	verts  []*perVertex
}

// New creates a Store for n vertices and the given number of levels.
func New(n int, levels int) *Store {
	return &Store{levels: levels, verts: make([]*perVertex, n)}
}

// Levels reports the number of levels the store was created with.
func (s *Store) Levels() int { return s.levels }

func (s *Store) cell(u graph.Vertex, lvl int32) *lists {
	pv := s.verts[u]
	if pv == nil {
		pv = &perVertex{lv: make([]lists, s.levels)}
		s.verts[u] = pv
	}
	return &pv.lv[lvl]
}

// insertAt appends r to x's (level, tree) list.
func (s *Store) insertAt(x graph.Vertex, r *Rec) {
	arr := s.cell(x, r.Level).arr(r.IsTree)
	r.setPos(x, int32(len(*arr)))
	*arr = append(*arr, r)
}

// deleteAt removes r from x's list by swapping with the last element.
func (s *Store) deleteAt(x graph.Vertex, r *Rec) {
	arr := s.cell(x, r.Level).arr(r.IsTree)
	i := r.pos(x)
	last := int32(len(*arr) - 1)
	if i != last {
		moved := (*arr)[last]
		(*arr)[i] = moved
		moved.setPos(x, i)
	}
	(*arr)[last] = nil
	*arr = (*arr)[:last]
	r.setPos(x, -1)
}

// Insert adds r to the lists of both endpoints (sequential; see BatchInsert).
func (s *Store) Insert(r *Rec) {
	s.insertAt(r.E.U, r)
	s.insertAt(r.E.V, r)
}

// Delete removes r from the lists of both endpoints.
func (s *Store) Delete(r *Rec) {
	s.deleteAt(r.E.U, r)
	s.deleteAt(r.E.V, r)
}

// Count returns the length of u's (lvl, isTree) list.
func (s *Store) Count(u graph.Vertex, lvl int32, isTree bool) int {
	pv := s.verts[u]
	if pv == nil {
		return 0
	}
	return len(*pv.lv[lvl].arr(isTree))
}

// Fetch returns up to l records from the front of u's (lvl, isTree) list.
// The returned slice aliases the store; callers must not mutate it.
func (s *Store) Fetch(u graph.Vertex, lvl int32, isTree bool, l int) []*Rec {
	pv := s.verts[u]
	if pv == nil {
		return nil
	}
	arr := *pv.lv[lvl].arr(isTree)
	if l > len(arr) {
		l = len(arr)
	}
	return arr[:l]
}

// All returns every record in u's (lvl, isTree) list.
func (s *Store) All(u graph.Vertex, lvl int32, isTree bool) []*Rec {
	return s.Fetch(u, lvl, isTree, 1<<31-1)
}

// Neighbors appends to dst the endpoint opposite u of every record in u's
// lists across all levels — the tree lists always, the non-tree lists unless
// treeOnly. Each live edge holds exactly one record, so the result is
// duplicate-free. O(degree); read-only.
//
//conn:readonly
func (s *Store) Neighbors(u graph.Vertex, treeOnly bool, dst []graph.Vertex) []graph.Vertex {
	pv := s.verts[u]
	if pv == nil {
		return dst
	}
	for lvl := range pv.lv {
		for _, r := range pv.lv[lvl].tree {
			dst = append(dst, r.E.Other(u))
		}
		if treeOnly {
			continue
		}
		for _, r := range pv.lv[lvl].nonTree {
			dst = append(dst, r.E.Other(u))
		}
	}
	return dst
}

// Delta reports the per-(vertex, level) change in list lengths produced by a
// batch operation, so the caller can repair ETT augmented values.
type Delta struct {
	V       graph.Vertex
	Level   int32
	Tree    int64
	NonTree int64
}

// endpointGroups semisorts records by endpoint so each vertex's mutations can
// run sequentially while distinct vertices proceed in parallel. Each record
// appears in exactly two groups (once per endpoint).
func endpointGroups(recs []*Rec) []parallel.Group {
	keys := make([]uint64, 2*len(recs))
	parallel.For(len(recs), 2048, func(i int) {
		keys[2*i] = uint64(uint32(recs[i].E.U))
		keys[2*i+1] = uint64(uint32(recs[i].E.V))
	})
	return parallel.GroupByParallel(keys)
}

// BatchInsert inserts all records (each into both endpoint lists) and
// returns the per-(vertex, level) count deltas. O(1) amortized work per edge,
// parallel across vertices.
func (s *Store) BatchInsert(recs []*Rec) []Delta {
	return s.batch(recs, true)
}

// BatchDelete removes all records and returns count deltas.
func (s *Store) BatchDelete(recs []*Rec) []Delta {
	return s.batch(recs, false)
}

func (s *Store) batch(recs []*Rec, insert bool) []Delta {
	if len(recs) == 0 {
		return nil
	}
	groups := endpointGroups(recs)
	// Pre-touch cells sequentially: cell() lazily allocates per-vertex
	// state and two goroutines handling u and v of different records
	// never share a vertex, but allocation is idempotent per vertex so
	// grouping already isolates it.
	out := make([][]Delta, len(groups))
	parallel.For(len(groups), 0, func(gi int) {
		g := groups[gi]
		u := graph.Vertex(uint32(g.Key))
		// Per-level delta accumulation for this vertex.
		var dl []Delta
		find := func(lvl int32) *Delta {
			for i := range dl {
				if dl[i].Level == lvl {
					return &dl[i]
				}
			}
			dl = append(dl, Delta{V: u, Level: lvl})
			return &dl[len(dl)-1]
		}
		for _, idx := range g.Indices {
			r := recs[idx/2]
			d := find(r.Level)
			sign := int64(1)
			if insert {
				s.insertAt(u, r)
			} else {
				s.deleteAt(u, r)
				sign = -1
			}
			if r.IsTree {
				d.Tree += sign
			} else {
				d.NonTree += sign
			}
		}
		out[gi] = dl
	})
	var flat []Delta
	for _, dl := range out {
		flat = append(flat, dl...)
	}
	return flat
}

// CheckInvariants verifies position back-pointers for vertex u; for tests.
func (s *Store) CheckInvariants(u graph.Vertex) error {
	pv := s.verts[u]
	if pv == nil {
		return nil
	}
	for lvl := range pv.lv {
		for _, isTree := range []bool{true, false} {
			arr := *pv.lv[lvl].arr(isTree)
			for i, r := range arr {
				if r == nil {
					return fmt.Errorf("nil rec at v=%d lvl=%d i=%d", u, lvl, i)
				}
				if int(r.Level) != lvl || r.IsTree != isTree {
					return fmt.Errorf("rec %v in wrong list (lvl=%d tree=%v)", r.E, lvl, isTree)
				}
				if r.pos(u) != int32(i) {
					return fmt.Errorf("rec %v pos=%d want %d", r.E, r.pos(u), i)
				}
				if r.E.U != u && r.E.V != u {
					return fmt.Errorf("rec %v not incident on %d", r.E, u)
				}
			}
		}
	}
	return nil
}
