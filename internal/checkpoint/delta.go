// Delta checkpoints: the incremental half of the checkpoint chain.
//
// A delta file records the edge-set difference between the live graph and
// the last FULL snapshot — the spanning-forest diff followed by the
// non-tree diff, which for the paper's batch-dynamic structure is tiny
// compared to the whole edge set — so a checkpoint between full snapshots
// costs O(changes), not O(graph). Deltas always diff against a full
// snapshot (never against another delta), so a restore chain is at most
// two files: the newest valid full snapshot plus the newest valid delta
// based on it. A corrupt or mismatched delta simply drops out of the
// chain: LoadChain falls back to the full snapshot alone, and the WAL —
// which is only truncated at full checkpoints — still holds every record
// since the full, so nothing acked is ever lost.
//
// File format (little-endian):
//
//	magic "conndlt\x01" (8) | payload | crc32c(payload) uint32
//	payload: seq uint64 | base uint64 | n uint32 | nAdd uint32 | nDel uint32 |
//	         add edges (u,v uint32 each) | del edges (u,v uint32 each)
//
// base names the full snapshot's seq; a delta only composes with the full
// snapshot whose seq it records.
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/wal"
)

const (
	deltaPrefix  = "delta-"
	deltaSuffix  = ".dckpt"
	deltaHdrOff  = 8
	deltaEdgeOff = 8 + 28 // magic + (seq, base, n, nAdd, nDel)
	deltaMinLen  = deltaEdgeOff + 4
)

var deltaMagic = [8]byte{'c', 'o', 'n', 'n', 'd', 'l', 't', 1}

// Delta is one incremental checkpoint: the live edge set as of Seq equals
// the Base full snapshot's edges minus Del plus Add. Add is emitted
// spanning-forest diff first, then non-tree diff, preserving the
// structure's decomposition order (restore does not depend on it).
type Delta struct {
	Seq  uint64
	Base uint64
	N    int
	Add  []graph.Edge
	Del  []graph.Edge
}

// EncodeDelta serializes a delta checkpoint.
func EncodeDelta(d Delta) []byte {
	buf := make([]byte, deltaEdgeOff+8*(len(d.Add)+len(d.Del))+4)
	copy(buf, deltaMagic[:])
	binary.LittleEndian.PutUint64(buf[deltaHdrOff:], d.Seq)
	binary.LittleEndian.PutUint64(buf[deltaHdrOff+8:], d.Base)
	binary.LittleEndian.PutUint32(buf[deltaHdrOff+16:], uint32(d.N))
	binary.LittleEndian.PutUint32(buf[deltaHdrOff+20:], uint32(len(d.Add)))
	binary.LittleEndian.PutUint32(buf[deltaHdrOff+24:], uint32(len(d.Del)))
	o := deltaEdgeOff
	for _, es := range [2][]graph.Edge{d.Add, d.Del} {
		for _, e := range es {
			binary.LittleEndian.PutUint32(buf[o:], uint32(e.U))
			binary.LittleEndian.PutUint32(buf[o+4:], uint32(e.V))
			o += 8
		}
	}
	binary.LittleEndian.PutUint32(buf[len(buf)-4:],
		crc32.Checksum(buf[deltaHdrOff:len(buf)-4], castagnoli))
	return buf
}

// DecodeDelta parses and validates a delta file's bytes. It never panics
// on arbitrary input; anything short, checksum-corrupt, inconsistent, or
// holding out-of-universe edges returns ErrCorrupt.
func DecodeDelta(data []byte) (Delta, error) {
	if len(data) < deltaMinLen || [8]byte(data[:8]) != deltaMagic {
		return Delta{}, ErrCorrupt
	}
	payload := data[deltaHdrOff : len(data)-4]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(data[len(data)-4:]) {
		return Delta{}, fmt.Errorf("%w: delta checksum mismatch", ErrCorrupt)
	}
	d := Delta{
		Seq:  binary.LittleEndian.Uint64(payload),
		Base: binary.LittleEndian.Uint64(payload[8:]),
		N:    int(binary.LittleEndian.Uint32(payload[16:])),
	}
	nAdd := int(binary.LittleEndian.Uint32(payload[20:]))
	nDel := int(binary.LittleEndian.Uint32(payload[24:]))
	if d.N <= 0 || d.N > maxN || nAdd < 0 || nDel < 0 || d.Seq <= d.Base ||
		28+8*(nAdd+nDel) != len(payload) {
		return Delta{}, fmt.Errorf("%w: inconsistent delta lengths", ErrCorrupt)
	}
	es := make([]graph.Edge, nAdd+nDel)
	for i := range es {
		u := int32(binary.LittleEndian.Uint32(payload[28+8*i:]))
		v := int32(binary.LittleEndian.Uint32(payload[28+8*i+4:]))
		if u < 0 || v < 0 || int(u) >= d.N || int(v) >= d.N {
			return Delta{}, fmt.Errorf("%w: edge {%d,%d} outside universe [0,%d)", ErrCorrupt, u, v, d.N)
		}
		es[i] = graph.Edge{U: u, V: v}
	}
	d.Add, d.Del = es[:nAdd:nAdd], es[nAdd:]
	return d, nil
}

// deltaFileName returns the delta file name for a sequence number.
func deltaFileName(seq uint64) string {
	return fmt.Sprintf("%s%016x%s", deltaPrefix, seq, deltaSuffix)
}

// WriteDelta durably persists a delta checkpoint into dir (write temp,
// fsync, rename, fsync dir) and returns the final path.
//
//conn:fsync-barrier
func WriteDelta(dir string, d Delta) (string, error) {
	final := filepath.Join(dir, deltaFileName(d.Seq))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return "", err
	}
	if _, err := f.Write(EncodeDelta(d)); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return "", err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return "", err
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return "", err
	}
	if err := os.Rename(tmp, final); err != nil {
		_ = os.Remove(tmp)
		return "", err
	}
	return final, wal.SyncDir(dir)
}

// listDeltas returns delta file names in dir, newest (highest seq) first.
func listDeltas(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasPrefix(name, deltaPrefix) && strings.HasSuffix(name, deltaSuffix) {
			names = append(names, name)
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names))) // zero-padded hex: lexicographic == numeric
	return names, nil
}

// Chain returns the newest usable checkpoint chain in dir: the newest full
// snapshot that decodes cleanly, plus the newest delta that decodes
// cleanly AND chains to it (delta.Base == full.Seq, same universe). delta
// is nil when no delta qualifies — the chain-validated fallback: a corrupt
// or mismatched delta never poisons a restore, it just shortens the chain
// to the full snapshot.
func Chain(dir string) (full Snapshot, delta *Delta, ok bool, err error) {
	full, ok, err = Load(dir)
	if err != nil || !ok {
		return Snapshot{}, nil, ok, err
	}
	names, err := listDeltas(dir)
	if err != nil && !os.IsNotExist(err) {
		return Snapshot{}, nil, false, err
	}
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			continue
		}
		d, err := DecodeDelta(data)
		if err != nil || d.Base != full.Seq || d.N != full.N {
			continue // damaged, or chained to a different full snapshot
		}
		return full, &d, true, nil
	}
	return full, nil, true, nil
}

// Compose applies a delta to its base full snapshot, yielding the live
// edge set at the delta's seq. The delta must chain to s (Chain
// guarantees it). Order is deterministic: surviving base edges first, in
// base order, then the delta's additions.
func Compose(s Snapshot, d *Delta) Snapshot {
	if d == nil {
		return s
	}
	dead := make(map[graph.Edge]struct{}, len(d.Del))
	for _, e := range d.Del {
		dead[normEdge(e)] = struct{}{}
	}
	edges := make([]graph.Edge, 0, len(s.Edges)-len(d.Del)+len(d.Add))
	for _, e := range s.Edges {
		if _, gone := dead[normEdge(e)]; !gone {
			edges = append(edges, e)
		}
	}
	edges = append(edges, d.Add...)
	return Snapshot{Seq: d.Seq, N: s.N, Edges: edges}
}

// normEdge canonicalizes an undirected edge for set membership.
func normEdge(e graph.Edge) graph.Edge {
	if e.U > e.V {
		return graph.Edge{U: e.V, V: e.U}
	}
	return e
}

// LoadChain returns the newest restorable state in dir: the newest valid
// full snapshot with its newest valid chained delta applied. ok is false
// when dir holds no usable full checkpoint (an orphaned delta alone cannot
// restore anything).
func LoadChain(dir string) (Snapshot, bool, error) {
	full, delta, ok, err := Chain(dir)
	if err != nil || !ok {
		return Snapshot{}, ok, err
	}
	return Compose(full, delta), true, nil
}

// PruneDeltas removes every delta file at or below keepSeq (plus stray
// delta temp files) — called after a full checkpoint at keepSeq subsumes
// them. Removal failures are ignored, as in Prune.
func PruneDeltas(dir string, keepSeq uint64) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	cut := deltaFileName(keepSeq)
	for _, e := range ents {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp") && strings.HasPrefix(name, deltaPrefix):
			os.Remove(filepath.Join(dir, name))
		case strings.HasPrefix(name, deltaPrefix) && strings.HasSuffix(name, deltaSuffix) && name <= cut:
			os.Remove(filepath.Join(dir, name))
		}
	}
}
