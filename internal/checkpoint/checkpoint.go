// Package checkpoint implements durable snapshots of a connectivity graph's
// live edge set, the companion of internal/wal: a checkpoint bounds how much
// WAL a restart must replay, and lets the WAL be truncated.
//
// A snapshot file is written temp-then-rename with fsyncs on both the file
// and the directory, so at every instant the directory holds only complete,
// verifiable checkpoints. Files are named checkpoint-%016x.ckpt by the WAL
// sequence number they capture; Load picks the newest file that decodes and
// checksums cleanly, skipping damaged ones.
//
// File format (little-endian):
//
//	magic "connckp\x01" (8) | payload | crc32c(payload) uint32
//	payload: seq uint64 | n uint32 | numEdges uint32 | edges (u,v uint32 each)

//conn:decoders
//conn:durable-files
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/wal"
)

const (
	prefix  = "checkpoint-"
	suffix  = ".ckpt"
	minLen  = 8 + 16 + 4
	maxN    = 1 << 31
	hdrOff  = 8
	edgeOff = 8 + 16
)

var magic = [8]byte{'c', 'o', 'n', 'n', 'c', 'k', 'p', 1}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt is returned by Decode for any byte slice that is not a
// complete, checksum-clean snapshot.
var ErrCorrupt = errors.New("checkpoint: corrupt snapshot")

// Snapshot is the decoded state of one checkpoint: the full live edge set
// of a graph on N vertices as of WAL sequence number Seq.
type Snapshot struct {
	Seq   uint64
	N     int
	Edges []graph.Edge
}

// Encode serializes a snapshot.
func Encode(s Snapshot) []byte {
	buf := make([]byte, edgeOff+8*len(s.Edges)+4)
	copy(buf, magic[:])
	binary.LittleEndian.PutUint64(buf[hdrOff:], s.Seq)
	binary.LittleEndian.PutUint32(buf[hdrOff+8:], uint32(s.N))
	binary.LittleEndian.PutUint32(buf[hdrOff+12:], uint32(len(s.Edges)))
	for i, e := range s.Edges {
		binary.LittleEndian.PutUint32(buf[edgeOff+8*i:], uint32(e.U))
		binary.LittleEndian.PutUint32(buf[edgeOff+8*i+4:], uint32(e.V))
	}
	binary.LittleEndian.PutUint32(buf[len(buf)-4:],
		crc32.Checksum(buf[hdrOff:len(buf)-4], castagnoli))
	return buf
}

// Decode parses and validates a snapshot file's bytes. It never panics on
// arbitrary input; anything short, checksum-corrupt, inconsistent, or
// holding out-of-universe edges returns ErrCorrupt.
func Decode(data []byte) (Snapshot, error) {
	if len(data) < minLen || [8]byte(data[:8]) != magic {
		return Snapshot{}, ErrCorrupt
	}
	payload := data[hdrOff : len(data)-4]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(data[len(data)-4:]) {
		return Snapshot{}, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	s := Snapshot{
		Seq: binary.LittleEndian.Uint64(payload),
		N:   int(binary.LittleEndian.Uint32(payload[8:])),
	}
	numEdges := int(binary.LittleEndian.Uint32(payload[12:]))
	if s.N <= 0 || s.N > maxN || numEdges < 0 || 16+8*numEdges != len(payload) {
		return Snapshot{}, fmt.Errorf("%w: inconsistent lengths", ErrCorrupt)
	}
	s.Edges = make([]graph.Edge, numEdges)
	for i := range s.Edges {
		u := int32(binary.LittleEndian.Uint32(payload[16+8*i:]))
		v := int32(binary.LittleEndian.Uint32(payload[16+8*i+4:]))
		if u < 0 || v < 0 || int(u) >= s.N || int(v) >= s.N {
			return Snapshot{}, fmt.Errorf("%w: edge {%d,%d} outside universe [0,%d)", ErrCorrupt, u, v, s.N)
		}
		s.Edges[i] = graph.Edge{U: u, V: v}
	}
	return s, nil
}

// fileName returns the snapshot file name for a sequence number.
func fileName(seq uint64) string { return fmt.Sprintf("%s%016x%s", prefix, seq, suffix) }

// Write durably persists a snapshot into dir (write temp, fsync, rename,
// fsync dir) and returns the final path. After Write returns nil the
// snapshot survives any crash.
//
//conn:fsync-barrier
func Write(dir string, s Snapshot) (string, error) {
	final := filepath.Join(dir, fileName(s.Seq))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return "", err
	}
	if _, err := f.Write(Encode(s)); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return "", err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return "", err
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return "", err
	}
	if err := os.Rename(tmp, final); err != nil {
		_ = os.Remove(tmp)
		return "", err
	}
	return final, wal.SyncDir(dir)
}

// list returns checkpoint file names in dir, newest (highest seq) first.
func list(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasPrefix(name, prefix) && strings.HasSuffix(name, suffix) {
			names = append(names, name)
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names))) // zero-padded hex: lexicographic == numeric
	return names, nil
}

// Load returns the newest snapshot in dir that decodes cleanly, skipping
// (but not deleting) damaged files. ok is false when dir holds no usable
// checkpoint.
func Load(dir string) (s Snapshot, ok bool, err error) {
	names, err := list(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return Snapshot{}, false, nil
		}
		return Snapshot{}, false, err
	}
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			continue
		}
		if s, err := Decode(data); err == nil {
			return s, true, nil
		}
	}
	return Snapshot{}, false, nil
}

// Prune removes every checkpoint file older than keepSeq (and any stray
// temp files), keeping the checkpoint at keepSeq itself. Removal failures
// are ignored — stale checkpoints are garbage, not corruption.
func Prune(dir string, keepSeq uint64) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	keep := fileName(keepSeq)
	for _, e := range ents {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp") && strings.HasPrefix(name, prefix):
			os.Remove(filepath.Join(dir, name))
		case strings.HasPrefix(name, prefix) && strings.HasSuffix(name, suffix) && name < keep:
			os.Remove(filepath.Join(dir, name))
		}
	}
}
