package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := Snapshot{Seq: 42, N: 100, Edges: []graph.Edge{{U: 0, V: 1}, {U: 7, V: 99}}}
	got, err := Decode(Encode(s))
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != s.Seq || got.N != s.N || len(got.Edges) != 2 || got.Edges[1] != s.Edges[1] {
		t.Fatalf("round trip = %+v", got)
	}
	empty := Snapshot{Seq: 0, N: 1}
	if _, err := Decode(Encode(empty)); err != nil {
		t.Fatalf("empty snapshot: %v", err)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	enc := Encode(Snapshot{Seq: 3, N: 10, Edges: []graph.Edge{{U: 1, V: 2}}})
	for i := range enc {
		bad := append([]byte{}, enc...)
		bad[i] ^= 0x10
		if _, err := Decode(bad); err == nil {
			t.Fatalf("flip at byte %d accepted", i)
		}
	}
	for _, cut := range []int{0, 5, len(enc) - 1} {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Fatalf("truncation to %d accepted", cut)
		}
	}
}

func TestDecodeRejectsOutOfUniverseEdge(t *testing.T) {
	if _, err := Decode(Encode(Snapshot{Seq: 1, N: 4, Edges: []graph.Edge{{U: 1, V: 7}}})); err == nil {
		t.Fatal("edge outside universe accepted")
	}
}

func TestWriteLoadNewestAndFallback(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := Load(dir); err != nil || ok {
		t.Fatalf("empty dir: ok=%v err=%v", ok, err)
	}
	if _, ok, err := Load(filepath.Join(dir, "missing")); err != nil || ok {
		t.Fatalf("missing dir: ok=%v err=%v", ok, err)
	}
	if _, err := Write(dir, Snapshot{Seq: 5, N: 8, Edges: []graph.Edge{{U: 0, V: 1}}}); err != nil {
		t.Fatal(err)
	}
	p9, err := Write(dir, Snapshot{Seq: 9, N: 8, Edges: []graph.Edge{{U: 2, V: 3}}})
	if err != nil {
		t.Fatal(err)
	}
	s, ok, err := Load(dir)
	if err != nil || !ok || s.Seq != 9 {
		t.Fatalf("Load = %+v ok=%v err=%v, want seq 9", s, ok, err)
	}
	// Damage the newest: Load must fall back to seq 5, not fail.
	if err := os.WriteFile(p9, []byte("scribble"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, ok, err = Load(dir)
	if err != nil || !ok || s.Seq != 5 {
		t.Fatalf("fallback Load = %+v ok=%v err=%v, want seq 5", s, ok, err)
	}
}

func TestPruneKeepsCurrent(t *testing.T) {
	dir := t.TempDir()
	for _, seq := range []uint64{1, 4, 9} {
		if _, err := Write(dir, Snapshot{Seq: seq, N: 4}); err != nil {
			t.Fatal(err)
		}
	}
	stray := filepath.Join(dir, "checkpoint-dead.ckpt.tmp")
	if err := os.WriteFile(stray, []byte("tmp"), 0o644); err != nil {
		t.Fatal(err)
	}
	Prune(dir, 9)
	names, err := list(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != fileName(9) {
		t.Fatalf("after prune: %v", names)
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatal("stray temp file survived prune")
	}
}

// FuzzCheckpointDecode feeds arbitrary bytes to the snapshot decoder: it
// must never panic, and anything it accepts must re-encode to exactly the
// input (the format is canonical, so acceptance implies a clean CRC and
// fully consistent lengths).
func FuzzCheckpointDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(Encode(Snapshot{Seq: 1, N: 4, Edges: []graph.Edge{{U: 0, V: 3}}}))
	f.Add(Encode(Snapshot{Seq: 0, N: 1}))
	bad := Encode(Snapshot{Seq: 2, N: 4, Edges: []graph.Edge{{U: 1, V: 2}}})
	bad[9] ^= 0x80
	f.Add(bad)
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return
		}
		if !bytes.Equal(Encode(s), data) {
			t.Fatalf("accepted snapshot does not round-trip (%d bytes)", len(data))
		}
		for _, e := range s.Edges {
			if e.U < 0 || e.V < 0 || int(e.U) >= s.N || int(e.V) >= s.N {
				t.Fatalf("accepted out-of-universe edge %v with n=%d", e, s.N)
			}
		}
	})
}
