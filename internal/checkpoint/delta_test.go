package checkpoint

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

func edges(vals ...int32) []graph.Edge {
	es := make([]graph.Edge, 0, len(vals)/2)
	for i := 0; i+1 < len(vals); i += 2 {
		es = append(es, graph.Edge{U: vals[i], V: vals[i+1]})
	}
	return es
}

func TestDeltaRoundTrip(t *testing.T) {
	for _, d := range []Delta{
		{Seq: 10, Base: 5, N: 64},
		{Seq: 10, Base: 5, N: 64, Add: edges(1, 2, 3, 4)},
		{Seq: 10, Base: 5, N: 64, Del: edges(7, 8)},
		{Seq: 2, Base: 1, N: 64, Add: edges(0, 63), Del: edges(5, 6, 9, 10, 11, 12)},
	} {
		got, err := DecodeDelta(EncodeDelta(d))
		if err != nil {
			t.Fatalf("%+v: %v", d, err)
		}
		if got.Seq != d.Seq || got.Base != d.Base || got.N != d.N ||
			len(got.Add) != len(d.Add) || len(got.Del) != len(d.Del) {
			t.Fatalf("round trip: got %+v, want %+v", got, d)
		}
		for i := range d.Add {
			if got.Add[i] != d.Add[i] {
				t.Fatalf("Add[%d] = %v, want %v", i, got.Add[i], d.Add[i])
			}
		}
		for i := range d.Del {
			if got.Del[i] != d.Del[i] {
				t.Fatalf("Del[%d] = %v, want %v", i, got.Del[i], d.Del[i])
			}
		}
	}
}

func TestDeltaDecodeRejects(t *testing.T) {
	enc := EncodeDelta(Delta{Seq: 10, Base: 5, N: 64, Add: edges(1, 2)})
	cases := map[string][]byte{
		"truncated": enc[:len(enc)-5],
		"trailing":  append(enc[:len(enc):len(enc)], 0),
		"flipped": func() []byte {
			b := append([]byte(nil), enc...)
			b[deltaEdgeOff+2] ^= 0xff
			return b
		}(),
		"full-magic": func() []byte {
			s := Encode(Snapshot{Seq: 10, N: 64, Edges: edges(1, 2)})
			return s
		}(),
	}
	for name, data := range cases {
		if _, err := DecodeDelta(data); err == nil {
			t.Fatalf("%s input accepted", name)
		}
	}
	// seq <= base is inconsistent even when the checksum is right.
	if _, err := DecodeDelta(EncodeDelta(Delta{Seq: 5, Base: 5, N: 64})); err == nil {
		t.Fatal("accepted delta with seq == base")
	}
}

// TestChainComposeAndFallback is the chain contract end to end: a full
// snapshot plus deltas loads the newest chained state; corrupting the
// newest delta falls back to an older valid delta; corrupting all of them
// falls back to the full snapshot alone.
func TestChainComposeAndFallback(t *testing.T) {
	dir := t.TempDir()
	full := Snapshot{Seq: 100, N: 64, Edges: edges(1, 2, 3, 4, 5, 6)}
	if _, err := Write(dir, full); err != nil {
		t.Fatal(err)
	}
	d1 := Delta{Seq: 110, Base: 100, N: 64, Add: edges(7, 8), Del: edges(3, 4)}
	d2 := Delta{Seq: 120, Base: 100, N: 64, Add: edges(7, 8, 9, 10), Del: edges(3, 4, 1, 2)}
	p1, err := WriteDelta(dir, d1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := WriteDelta(dir, d2)
	if err != nil {
		t.Fatal(err)
	}

	s, ok, err := LoadChain(dir)
	if err != nil || !ok {
		t.Fatalf("LoadChain: %v %v", ok, err)
	}
	if s.Seq != 120 || len(s.Edges) != 3 {
		t.Fatalf("composed chain = seq %d, %d edges (%v); want seq 120 with {5-6,7-8,9-10}", s.Seq, len(s.Edges), s.Edges)
	}
	want := map[graph.Edge]bool{{U: 5, V: 6}: true, {U: 7, V: 8}: true, {U: 9, V: 10}: true}
	for _, e := range s.Edges {
		if !want[e] {
			t.Fatalf("unexpected edge %v in composed state", e)
		}
	}

	// Corrupt the newest delta: chain shortens to the older one.
	if err := os.WriteFile(p2, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, ok, err = LoadChain(dir)
	if err != nil || !ok || s.Seq != 110 {
		t.Fatalf("after corrupting newest delta: seq %d ok=%v err=%v, want fallback to 110", s.Seq, ok, err)
	}

	// Corrupt the remaining delta: chain shortens to the full snapshot.
	data, _ := os.ReadFile(p1)
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(p1, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s, ok, err = LoadChain(dir)
	if err != nil || !ok || s.Seq != 100 || len(s.Edges) != 3 {
		t.Fatalf("after corrupting all deltas: seq %d (%d edges) ok=%v err=%v, want the full snapshot", s.Seq, len(s.Edges), ok, err)
	}
}

// TestChainRejectsMismatchedBase: a delta chained to a different (older)
// full snapshot must not compose with the current one.
func TestChainRejectsMismatchedBase(t *testing.T) {
	dir := t.TempDir()
	if _, err := Write(dir, Snapshot{Seq: 50, N: 64, Edges: edges(1, 2)}); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteDelta(dir, Delta{Seq: 60, Base: 50, N: 64, Add: edges(3, 4)}); err != nil {
		t.Fatal(err)
	}
	if _, err := Write(dir, Snapshot{Seq: 70, N: 64, Edges: edges(1, 2, 3, 4, 5, 6)}); err != nil {
		t.Fatal(err)
	}
	s, ok, err := LoadChain(dir)
	if err != nil || !ok || s.Seq != 70 || len(s.Edges) != 3 {
		t.Fatalf("delta with stale base composed: seq %d (%d edges)", s.Seq, len(s.Edges))
	}
}

func TestPruneDeltas(t *testing.T) {
	dir := t.TempDir()
	for _, seq := range []uint64{10, 20, 30} {
		if _, err := WriteDelta(dir, Delta{Seq: seq, Base: 5, N: 8}); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, deltaFileName(40)+".tmp"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	PruneDeltas(dir, 20)
	names, err := listDeltas(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != deltaFileName(30) {
		t.Fatalf("after prune at 20: %v, want only seq 30", names)
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Fatalf("stray tmp %s survived prune", e.Name())
		}
	}
}
