package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseSchedule parses the schedule grammar into rules. A schedule is a
// semicolon-separated list of rules:
//
//	rule    := <site> ':' <action> ['=' <arg>] ['@' mod (',' mod)*]
//	action  := fail | torn | drop | delay       (delay takes arg, a duration)
//	mod     := p=<float>      fire each hit with this seeded probability
//	         | after=<n>      skip the site's first n hits
//	         | nth=<n>        fire on exactly the n-th hit (1-based)
//	         | times=<n>      fire at most n times total
//
// Examples:
//
//	wal.append.pre-fsync:torn@nth=400
//	server.conn.read:drop@p=0.01
//	repl.stream.send:delay=50ms@p=0.005,after=100
//	wal.open.torn-tail:torn@times=1
//
// Every site must be registered in Sites; unknown sites, actions or
// modifiers are errors — a schedule must never silently reference a fault
// point that does not exist.
func ParseSchedule(schedule string) ([]*rule, error) {
	var rules []*rule
	for _, part := range strings.Split(schedule, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := parseRule(part)
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("chaos: schedule %q holds no rules", schedule)
	}
	return rules, nil
}

func parseRule(s string) (*rule, error) {
	head, mods, hasMods := strings.Cut(s, "@")
	site, act, ok := strings.Cut(head, ":")
	if !ok {
		return nil, fmt.Errorf("chaos: rule %q: want <site>:<action>", s)
	}
	site = strings.TrimSpace(site)
	if _, registered := Sites[site]; !registered {
		return nil, fmt.Errorf("chaos: rule %q: unknown site %q", s, site)
	}
	r := &rule{site: site}
	actName, arg, hasArg := strings.Cut(strings.TrimSpace(act), "=")
	switch actName {
	case "fail":
		r.action = ActFail
	case "torn":
		r.action = ActTorn
	case "drop":
		r.action = ActDrop
	case "delay":
		r.action = ActDelay
		if !hasArg {
			return nil, fmt.Errorf("chaos: rule %q: delay needs a duration argument", s)
		}
		d, err := time.ParseDuration(arg)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("chaos: rule %q: bad delay %q", s, arg)
		}
		r.delay = d
		hasArg = false
	default:
		return nil, fmt.Errorf("chaos: rule %q: unknown action %q", s, actName)
	}
	if hasArg {
		return nil, fmt.Errorf("chaos: rule %q: action %s takes no argument", s, actName)
	}
	if !hasMods {
		return r, nil
	}
	for _, mod := range strings.Split(mods, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(mod), "=")
		if !ok {
			return nil, fmt.Errorf("chaos: rule %q: modifier %q: want key=value", s, mod)
		}
		switch key {
		case "p":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p <= 0 || p > 1 {
				return nil, fmt.Errorf("chaos: rule %q: probability %q outside (0,1]", s, val)
			}
			r.p = p
		case "after", "nth", "times":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil || n == 0 {
				return nil, fmt.Errorf("chaos: rule %q: modifier %s=%q: want a positive integer", s, key, val)
			}
			switch key {
			case "after":
				r.after = n
			case "nth":
				r.nth = n
			case "times":
				r.times = n
			}
		default:
			return nil, fmt.Errorf("chaos: rule %q: unknown modifier %q", s, key)
		}
	}
	return r, nil
}

// NewPlan parses schedule and binds it to seed without installing it —
// tests build plans directly to compare fire patterns.
func NewPlan(seed int64, schedule string) (*Plan, error) {
	rules, err := ParseSchedule(schedule)
	if err != nil {
		return nil, err
	}
	bySite := make(map[string][]*rule)
	for _, r := range rules {
		bySite[r.site] = append(bySite[r.site], r)
	}
	return &Plan{seed: seed, rules: bySite}, nil
}

// Inject is the Plan-scoped fault point, identical to the package-level
// Inject but against this plan regardless of what is armed globally.
func (p *Plan) Inject(site string) *Fault { return p.inject(site) }

// Trace returns a copy of this plan's fire log.
func (p *Plan) Trace() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, len(p.trace))
	copy(out, p.trace)
	return out
}
