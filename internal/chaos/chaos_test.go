package chaos

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestDisarmedInjectIsNil: the default state fires nothing — the production
// fast path.
func TestDisarmedInjectIsNil(t *testing.T) {
	Disarm()
	for site := range Sites {
		if f := Inject(site); f != nil {
			t.Fatalf("disarmed Inject(%q) fired %+v", site, f)
		}
	}
	if Armed() {
		t.Fatal("Armed() true while disarmed")
	}
	if tr := Trace(); tr != nil {
		t.Fatalf("disarmed Trace() = %v", tr)
	}
}

// TestDeterministicFirePattern: a site's fire pattern over its first N hits
// is a pure function of (seed, schedule) — two independent plans agree hit
// for hit, and a different seed produces a different pattern.
func TestDeterministicFirePattern(t *testing.T) {
	const sched = SiteServerConnRead + ":drop@p=0.1;" +
		SiteWALAppendPreFsync + ":torn@nth=7;" +
		SiteReplStreamSend + ":delay=1ms@p=0.3,after=5,times=10"
	pattern := func(seed int64) []string {
		p, err := NewPlan(seed, sched)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			p.Inject(SiteServerConnRead)
			p.Inject(SiteWALAppendPreFsync)
			p.Inject(SiteReplStreamSend)
		}
		return p.Trace()
	}
	a, b := pattern(42), pattern(42)
	if len(a) == 0 {
		t.Fatal("schedule never fired in 500 hits")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%v\n%v", a, b)
	}
	if c := pattern(43); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical fire patterns (hash ignores seed?)")
	}
}

// TestModifiers: nth fires exactly once at the named hit; times caps total
// firings; after skips the leading hits.
func TestModifiers(t *testing.T) {
	p, err := NewPlan(1, SiteWALOpenTornTail+":torn@nth=3")
	if err != nil {
		t.Fatal(err)
	}
	var fired []int
	for i := 1; i <= 10; i++ {
		if f := p.Inject(SiteWALOpenTornTail); f != nil {
			fired = append(fired, i)
			if f.Hit != uint64(i) || f.Action != ActTorn {
				t.Fatalf("fault %+v at hit %d", f, i)
			}
		}
	}
	if !reflect.DeepEqual(fired, []int{3}) {
		t.Fatalf("nth=3 fired at hits %v", fired)
	}

	p, err = NewPlan(1, SiteServerAccept+":delay=2ms@after=4,times=2")
	if err != nil {
		t.Fatal(err)
	}
	fired = nil
	for i := 1; i <= 20; i++ {
		if f := p.Inject(SiteServerAccept); f != nil {
			fired = append(fired, i)
			if f.Delay != 2*time.Millisecond {
				t.Fatalf("delay fault carries %v", f.Delay)
			}
		}
	}
	if !reflect.DeepEqual(fired, []int{5, 6}) {
		t.Fatalf("after=4,times=2 fired at hits %v", fired)
	}
}

// TestParseErrors: dead sites, malformed rules and bad modifiers must be
// rejected — a schedule can never silently reference a fault point that
// does not exist.
func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"wal.append.pre-fsync",                 // no action
		"no.such.site:fail",                    // unregistered site
		"wal.append.pre-fsync:explode",         // unknown action
		"wal.append.pre-fsync:fail=x",          // arg on argless action
		"server.conn.read:delay",               // delay without duration
		"server.conn.read:delay=banana",        // unparseable duration
		"server.conn.read:drop@p=1.5",          // probability out of range
		"server.conn.read:drop@nth=0",          // zero counter
		"server.conn.read:drop@huh=1",          // unknown modifier
		"server.conn.read:drop@p",              // modifier without value
		"wal.append.pre-fsync:fail;bogus:fail", // later rule bad
	}
	for _, s := range bad {
		if _, err := ParseSchedule(s); err == nil {
			t.Errorf("ParseSchedule(%q) accepted", s)
		}
	}
	if _, err := ParseSchedule("wal.open.torn-tail:torn@times=1; server.accept:delay=5ms@p=0.5"); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
}

// TestArmDisarm: arming installs the plan for package-level Inject and the
// trace records firings; disarming restores the no-op path.
func TestArmDisarm(t *testing.T) {
	defer Disarm()
	if err := Arm(7, SiteEngineCheckpointReset+":fail@nth=2"); err != nil {
		t.Fatal(err)
	}
	if Inject(SiteEngineCheckpointReset) != nil {
		t.Fatal("fired on hit 1 with nth=2")
	}
	f := Inject(SiteEngineCheckpointReset)
	if f == nil {
		t.Fatal("did not fire on hit 2")
	}
	if err := f.Err(); err == nil || !strings.Contains(err.Error(), SiteEngineCheckpointReset) {
		t.Fatalf("Err() = %v", err)
	}
	tr := Trace()
	if len(tr) != 1 || !strings.HasPrefix(tr[0], SiteEngineCheckpointReset+"#2") {
		t.Fatalf("Trace() = %v", tr)
	}
	Disarm()
	if Inject(SiteEngineCheckpointReset) != nil {
		t.Fatal("fired after Disarm")
	}
}

// TestSiteConstantsRegistered: every Site* constant is a key in Sites (the
// inverse direction — every key is a constant — is trivially true since the
// table is built from the constants; the connvet chaossite analyzer checks
// call sites use the constants).
func TestSiteConstantsRegistered(t *testing.T) {
	consts := []string{
		SiteWALAppendPreFsync, SiteWALAppendPostFsync, SiteWALOpenTornTail,
		SiteEngineGroupSync, SiteEngineDeltaCheckpoint,
		SiteEngineCheckpointReset, SiteReplStreamSend, SiteReplSnapshotSend,
		SiteReplFollowerConn, SiteServerAccept, SiteServerConnRead,
		SiteServerConnWrite,
	}
	if len(consts) != len(Sites) {
		t.Fatalf("%d Site constants, %d Sites entries", len(consts), len(Sites))
	}
	for _, c := range consts {
		if _, ok := Sites[c]; !ok {
			t.Errorf("site constant %q missing from Sites", c)
		}
	}
}
