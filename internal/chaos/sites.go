package chaos

// The injection sites, one constant per hook threaded into production code.
// Every constant must appear as a key in Sites below — the one registration
// table — and every chaos.Inject call site must pass one of these constants
// (the connvet `chaossite` analyzer enforces both), so a schedule can never
// reference a site that no longer exists in the code.
const (
	// SiteWALAppendPreFsync fires in wal.Log.Append before the record
	// reaches the file: Fail returns an append error (the engine treats
	// that as fail-stop and panics — a real crash); Torn additionally
	// leaves a partial frame on disk, the tail a crash mid-write leaves.
	SiteWALAppendPreFsync = "wal.append.pre-fsync"

	// SiteWALAppendPostFsync fires in wal.Log.Append after the fsync: the
	// record IS durable, but the append reports failure — a crash between
	// fsync and acknowledgement. Restart replays a superset of acked ops.
	SiteWALAppendPostFsync = "wal.append.post-fsync"

	// SiteWALOpenTornTail fires in wal.Open on an existing log: garbage is
	// appended past the last valid record before the recovery scan, the
	// image a torn write leaves, which Open must truncate away without
	// touching any durable record.
	SiteWALOpenTornTail = "wal.open.torn-tail"

	// SiteEngineGroupSync fires at the group-commit sync point, before the
	// shared fsync that makes a whole group of epochs durable: Fail is a
	// crash at the worst instant — several epochs appended, none synced,
	// every caller still blocked; Delay stretches the grouping window.
	SiteEngineGroupSync = "engine.group.sync"

	// SiteEngineDeltaCheckpoint fires in the engine's checkpoint service
	// before an incremental (delta) checkpoint is written: Fail makes the
	// delta write fail, which the engine reports without touching the WAL —
	// the chain simply stays at its previous link.
	SiteEngineDeltaCheckpoint = "engine.checkpoint.delta"

	// SiteEngineCheckpointReset fires in the engine's checkpoint service
	// where the WAL is truncated behind a fresh checkpoint: the reset
	// fails, forcing the fallback that keeps the old checkpoints and the
	// full log.
	SiteEngineCheckpointReset = "engine.checkpoint.reset"

	// SiteReplStreamSend fires in the hub's per-frame send to a follower:
	// Delay stalls the pump (a slow follower, overflowing its live buffer
	// into ErrLagging); Drop severs the stream mid-flight.
	SiteReplStreamSend = "repl.stream.send"

	// SiteReplSnapshotSend fires per snapshot chunk during catch-up: the
	// full-state transfer is cut mid-stream and the follower must restart
	// catch-up from scratch.
	SiteReplSnapshotSend = "repl.stream.snapshot"

	// SiteReplFollowerConn fires in the follower's frame loop: the
	// subscription connection drops and the follower re-enters its
	// reconnect/backoff/catch-up path.
	SiteReplFollowerConn = "repl.follower.conn"

	// SiteServerAccept fires in the server's accept loop: Delay stalls
	// accepting; Drop closes the fresh connection before it is served.
	SiteServerAccept = "server.accept"

	// SiteServerConnRead fires per request frame read: Delay injects read
	// latency; Drop resets the connection mid-request (clients redial).
	SiteServerConnRead = "server.conn.read"

	// SiteServerConnWrite fires per response write: Delay injects write
	// latency; Drop resets the connection under the response — the commit
	// survives, the acknowledgement is lost.
	SiteServerConnWrite = "server.conn.write"
)

// Sites is the registry: every valid injection site and what it simulates.
// ParseSchedule rejects rules naming anything not in this table.
var Sites = map[string]string{
	SiteWALAppendPreFsync:     "WAL append fails (or tears a partial frame) before the fsync",
	SiteWALAppendPostFsync:    "WAL append fails after the fsync: durable but unacknowledged",
	SiteWALOpenTornTail:       "WAL reopen finds a torn tail appended past the last valid record",
	SiteEngineGroupSync:       "group-commit fsync point fails (crash) or stalls",
	SiteEngineDeltaCheckpoint: "incremental checkpoint write fails; chain keeps previous link",
	SiteEngineCheckpointReset: "checkpoint's WAL truncation fails; fallback keeps old state",
	SiteReplStreamSend:        "replication pump to a follower stalls or drops",
	SiteReplSnapshotSend:      "snapshot catch-up stream is cut mid-transfer",
	SiteReplFollowerConn:      "follower's subscription connection drops",
	SiteServerAccept:          "server accept loop stalls or resets fresh connections",
	SiteServerConnRead:        "server request read stalls or resets the connection",
	SiteServerConnWrite:       "server response write stalls or resets the connection",
}
