// Package chaos is the deterministic fault-injection layer behind the
// whole-topology chaos harness (internal/topo, cmd/connchaos). Production
// code threads named injection points — sites — through its hot seams:
//
//	if f := chaos.Inject(chaos.SiteWALAppendPreFsync); f != nil { ... }
//
// Disarmed (the default, and the only state ordinary binaries ever run in),
// Inject is a single atomic pointer load returning nil, so the hooks cost
// nothing and change nothing. Armed with a seeded schedule — explicitly via
// Arm, or through the CONNCHAOS_SCHED / CONNCHAOS_SEED environment variables
// so child server processes arm themselves without code changes — each site
// consults its schedule rules and returns a *Fault describing the failure to
// simulate.
//
// Determinism: every firing decision is a pure function of (seed, site,
// hit index). A site's k-th execution either always fires or never fires for
// a given seed and schedule, independent of wall-clock time, goroutine
// interleaving, or what other sites did — so a failing run replays with the
// same per-site fault pattern from its seed alone. The fire trace (Trace)
// records firings in observed order for tests that hammer a site from one
// goroutine; across goroutines only the per-site pattern is defined.
//
// The valid site names live in one table (Sites, sites.go); parsing a
// schedule that references anything else fails loudly, and the connvet
// `chaossite` analyzer keeps call sites honest by requiring every
// chaos.Inject argument to be one of the named Site constants.
package chaos

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Environment variables a child process arms itself from on the first
// Inject call. The schedule must parse and every site must be registered —
// a process asked to run chaos cannot silently run clean, so arming
// failures panic.
const (
	EnvSchedule = "CONNCHAOS_SCHED"
	EnvSeed     = "CONNCHAOS_SEED"
)

// Action is the failure mode a fired fault asks the site to simulate. Sites
// honor the actions that make sense for them (a pure error path ignores the
// distinction between Fail and Drop) and treat anything else as Fail.
type Action int

const (
	// ActFail injects an error return.
	ActFail Action = iota
	// ActTorn injects a torn write: partial bytes reach the medium, then
	// the operation fails — the tail a crash mid-write leaves.
	ActTorn
	// ActDrop severs a connection or stream.
	ActDrop
	// ActDelay stalls the site for Fault.Delay.
	ActDelay
)

func (a Action) String() string {
	switch a {
	case ActFail:
		return "fail"
	case ActTorn:
		return "torn"
	case ActDrop:
		return "drop"
	case ActDelay:
		return "delay"
	}
	return fmt.Sprintf("action(%d)", int(a))
}

// Fault describes one fired injection: which site, which failure mode, and
// for delays, how long. Hit is the site's 1-based execution index that
// fired, which makes error messages replayable references.
type Fault struct {
	Site   string
	Action Action
	Delay  time.Duration
	Hit    uint64
}

// Err returns the error a failing site should surface.
func (f *Fault) Err() error {
	return fmt.Errorf("chaos: injected %s at site %s (hit %d)", f.Action, f.Site, f.Hit)
}

// Sleep blocks for the fault's delay (no-op for non-delay actions).
func (f *Fault) Sleep() {
	if f.Action == ActDelay && f.Delay > 0 {
		time.Sleep(f.Delay)
	}
}

// rule is one parsed schedule entry, plus its runtime counters.
type rule struct {
	site   string
	action Action
	delay  time.Duration

	// Firing modifiers. Zero values mean "no constraint": fire on every
	// hit. p in (0,1) gates each hit on the seeded hash; after skips the
	// first hits; nth fires on exactly that hit; times caps total firings.
	p     float64
	after uint64
	nth   uint64
	times uint64

	hits  atomic.Uint64
	fired atomic.Uint64
}

// fire decides deterministically whether this rule fires on the given hit.
func (r *rule) fire(seed int64, hit uint64) bool {
	if hit <= r.after {
		return false
	}
	if r.nth != 0 && hit != r.nth {
		return false
	}
	if r.p > 0 && chance(seed, r.site, hit) >= r.p {
		return false
	}
	if r.times != 0 {
		for {
			f := r.fired.Load()
			if f >= r.times {
				return false
			}
			if r.fired.CompareAndSwap(f, f+1) {
				return true
			}
		}
	}
	r.fired.Add(1)
	return true
}

// chance maps (seed, site, hit) to a uniform [0,1) value — splitmix64 over
// an FNV-1a fold of the site name. Pure, so a site's fire pattern is fixed
// by the seed alone.
func chance(seed int64, site string, hit uint64) float64 {
	h := uint64(seed) ^ 0xcbf29ce484222325
	for i := 0; i < len(site); i++ {
		h = (h ^ uint64(site[i])) * 0x100000001b3
	}
	h += hit * 0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return float64(h>>11) / float64(uint64(1)<<53)
}

// Plan is an armed schedule: the parsed rules keyed by site, the seed the
// firing decisions derive from, and the fire trace. Immutable after
// construction except for the rule counters and the trace.
type Plan struct {
	seed  int64
	rules map[string][]*rule

	mu    sync.Mutex
	trace []string
}

// maxTrace bounds the fire log so a high-probability schedule cannot grow
// memory without bound; firings past the cap still happen, just unrecorded.
const maxTrace = 1 << 14

func (p *Plan) inject(site string) *Fault {
	rs, ok := p.rules[site]
	if !ok {
		return nil
	}
	for _, r := range rs {
		hit := r.hits.Add(1)
		if !r.fire(p.seed, hit) {
			continue
		}
		p.mu.Lock()
		if len(p.trace) < maxTrace {
			p.trace = append(p.trace, fmt.Sprintf("%s#%d:%s", site, hit, r.action))
		}
		p.mu.Unlock()
		return &Fault{Site: site, Action: r.action, Delay: r.delay, Hit: hit}
	}
	return nil
}

// active is the armed plan; nil means every Inject is a no-op.
var active atomic.Pointer[Plan]

var envOnce sync.Once

// Inject is the fault point: site names a registered injection site (one of
// the Site constants) and the return is nil unless an armed schedule fires
// a fault for this execution of it. The disarmed fast path is one atomic
// load. The first call checks the CONNCHAOS_SCHED environment once, so
// child processes spawned with the variables set arm automatically.
//
// The //conn:fault-injector contract (enforced by connvet's chaossite
// rule): every call site must pass one of this package's Site constants,
// and every Site constant must be registered in the Sites table — so the
// set of injection points is a single greppable registry a schedule can be
// validated against.
//
//conn:fault-injector
func Inject(site string) *Fault {
	envOnce.Do(armFromEnv)
	p := active.Load()
	if p == nil {
		return nil
	}
	return p.inject(site)
}

// Arm parses schedule (see ParseSchedule for the grammar) and installs it:
// subsequent Inject calls consult it. Arming replaces any previous plan and
// resets all counters.
func Arm(seed int64, schedule string) error {
	p, err := NewPlan(seed, schedule)
	if err != nil {
		return err
	}
	active.Store(p)
	return nil
}

// Disarm removes the armed plan; Inject returns to the no-op fast path.
func Disarm() { active.Store(nil) }

// Armed reports whether a plan is installed.
func Armed() bool { return active.Load() != nil }

// Trace returns a copy of the armed plan's fire log: one "site#hit:action"
// entry per recorded firing, in observed order. Empty when disarmed.
func Trace() []string {
	p := active.Load()
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, len(p.trace))
	copy(out, p.trace)
	return out
}

// armFromEnv installs the schedule named by the environment, if any. A
// process explicitly asked to run under chaos must not silently run clean,
// so a malformed schedule is fatal.
func armFromEnv() {
	sched := os.Getenv(EnvSchedule)
	if sched == "" {
		return
	}
	var seed int64 = 1
	if s := os.Getenv(EnvSeed); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			panic(fmt.Sprintf("chaos: bad %s=%q: %v", EnvSeed, s, err))
		}
		seed = v
	}
	if err := Arm(seed, sched); err != nil {
		panic(fmt.Sprintf("chaos: bad %s: %v", EnvSchedule, err))
	}
}
