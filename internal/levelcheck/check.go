package levelcheck

import (
	"fmt"

	"repro/internal/adjlist"
	"repro/internal/ett"
	"repro/internal/graph"
	"repro/internal/unionfind"
)

// Check validates a level structure shared by the sequential HDT
// baseline and the parallel structure (which embeds the same shape):
//
//  1. every component of F_i has at most 2^i vertices (Invariant 1);
//  2. the forests are nested: each tree edge of F_i is present in F_{i+1};
//  3. each edge record's endpoints are connected in F_{level(e)}; tree
//     records appear in forests level..top, non-tree records in none;
//  4. per-vertex augmented counters in F_i equal the adjacency-list lengths
//     at level i;
//  5. F_top's connectivity equals union-find connectivity over all edges;
//  6. adjacency position back-pointers are intact.
func Check(n, top int, f []*ett.Forest, adj *adjlist.Store, edges []*adjlist.Rec) error {
	// (1) component size bounds.
	for i := 1; i <= top; i++ {
		bound := int64(1) << uint(i)
		for v := 0; v < n; v++ {
			if s := f[i].Size(graph.Vertex(v)); s > bound {
				return fmt.Errorf("level %d: component of %d has size %d > 2^%d", i, v, s, i)
			}
		}
	}
	// (2) nesting + (3) per-edge placement.
	for _, r := range edges {
		if int(r.Level) < 1 || int(r.Level) > top {
			return fmt.Errorf("edge %v has level %d outside [1,%d]", r.E, r.Level, top)
		}
		if r.IsTree {
			for j := int(r.Level); j <= top; j++ {
				if !f[j].HasEdge(r.E.U, r.E.V) {
					return fmt.Errorf("tree edge %v (level %d) missing from F_%d", r.E, r.Level, j)
				}
			}
			if int(r.Level) > 1 && f[int(r.Level)-1].HasEdge(r.E.U, r.E.V) {
				return fmt.Errorf("tree edge %v present below its level %d", r.E, r.Level)
			}
		} else {
			if !f[r.Level].Connected(r.E.U, r.E.V) {
				return fmt.Errorf("non-tree edge %v endpoints not connected in F_%d", r.E, r.Level)
			}
			for j := 1; j <= top; j++ {
				if f[j].HasEdge(r.E.U, r.E.V) {
					return fmt.Errorf("non-tree edge %v present in F_%d", r.E, j)
				}
			}
		}
	}
	// (4) counters vs adjacency lists, (6) back-pointers.
	for v := 0; v < n; v++ {
		if err := adj.CheckInvariants(graph.Vertex(v)); err != nil {
			return err
		}
		for i := 1; i <= top; i++ {
			tr, nt := f[i].Counts(graph.Vertex(v))
			wantT := int64(adj.Count(graph.Vertex(v), int32(i), true))
			wantN := int64(adj.Count(graph.Vertex(v), int32(i), false))
			if tr != wantT || nt != wantN {
				return fmt.Errorf("v=%d level %d: counters (%d,%d) != lists (%d,%d)",
					v, i, tr, nt, wantT, wantN)
			}
		}
	}
	// (5) top-level connectivity agrees with union-find over all edges.
	uf := unionfind.New(n)
	for _, r := range edges {
		uf.Union(r.E.U, r.E.V)
	}
	for v := 1; v < n; v++ {
		want := uf.Connected(0, int32(v))
		if got := f[top].Connected(0, graph.Vertex(v)); got != want {
			return fmt.Errorf("connectivity(0,%d) = %v, oracle %v", v, got, want)
		}
	}
	// Spot-check some random-ish pairs beyond vertex 0.
	for v := 0; v+7 < n; v += 5 {
		want := uf.Connected(int32(v), int32(v+7))
		if got := f[top].Connected(graph.Vertex(v), graph.Vertex(v+7)); got != want {
			return fmt.Errorf("connectivity(%d,%d) = %v, oracle %v", v, v+7, got, want)
		}
	}
	return nil
}
