package levelcheck

import (
	"strings"
	"testing"

	"repro/internal/adjlist"
	"repro/internal/ett"
	"repro/internal/graph"
)

// scaffold builds a tiny consistent 2-level structure:
// level 2 (top) holds tree edge (0,1) and non-tree edge... constructed
// manually so individual invariants can be broken on purpose.
type scaffold struct {
	n    int
	top  int
	f    []*ett.Forest
	adj  *adjlist.Store
	recs []*adjlist.Rec
}

func build(t *testing.T) *scaffold {
	t.Helper()
	n, top := 4, 2
	s := &scaffold{n: n, top: top, adj: adjlist.New(n, top+1)}
	s.f = make([]*ett.Forest, top+1)
	for i := 1; i <= top; i++ {
		s.f[i] = ett.New(n)
	}
	// Tree edge (0,1) at level 2.
	r1 := &adjlist.Rec{E: graph.Edge{U: 0, V: 1}, Level: 2, IsTree: true}
	s.adj.Insert(r1)
	s.f[2].Link(0, 1)
	s.f[2].AddCounts(0, 1, 0)
	s.f[2].AddCounts(1, 1, 0)
	// Non-tree edge (0,1) duplicate-ish path: use (0,1) again is illegal;
	// instead add tree edge (2,3) at level 1 (so it is in F_1 and F_2).
	r2 := &adjlist.Rec{E: graph.Edge{U: 2, V: 3}, Level: 1, IsTree: true}
	s.adj.Insert(r2)
	s.f[1].Link(2, 3)
	s.f[1].AddCounts(2, 1, 0)
	s.f[1].AddCounts(3, 1, 0)
	s.f[2].Link(2, 3)
	s.recs = []*adjlist.Rec{r1, r2}
	return s
}

func (s *scaffold) check() error {
	return Check(s.n, s.top, s.f, s.adj, s.recs)
}

func TestConsistentStructurePasses(t *testing.T) {
	s := build(t)
	if err := s.check(); err != nil {
		t.Fatalf("consistent structure rejected: %v", err)
	}
}

func TestDetectsMissingNesting(t *testing.T) {
	s := build(t)
	// Remove (2,3) from F_2: breaks nesting (it has level 1).
	s.f[2].Cut(2, 3)
	err := s.check()
	if err == nil || !strings.Contains(err.Error(), "missing from F_2") {
		t.Fatalf("nesting violation not detected: %v", err)
	}
}

func TestDetectsCounterMismatch(t *testing.T) {
	s := build(t)
	s.f[2].AddCounts(0, 5, 0) // counter now disagrees with the list
	err := s.check()
	if err == nil || !strings.Contains(err.Error(), "counters") {
		t.Fatalf("counter mismatch not detected: %v", err)
	}
}

func TestDetectsSizeInvariantViolation(t *testing.T) {
	n, top := 8, 2
	f := make([]*ett.Forest, top+1)
	for i := 1; i <= top; i++ {
		f[i] = ett.New(n)
	}
	adj := adjlist.New(n, top+1)
	// Build a component of 3 vertices at level 1 (bound is 2^1 = 2).
	var recs []*adjlist.Rec
	for _, e := range []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}} {
		r := &adjlist.Rec{E: e, Level: 1, IsTree: true}
		adj.Insert(r)
		f[1].Link(e.U, e.V)
		f[1].AddCounts(e.U, 1, 0)
		f[1].AddCounts(e.V, 1, 0)
		f[2].Link(e.U, e.V)
		recs = append(recs, r)
	}
	err := Check(n, top, f, adj, recs)
	if err == nil || !strings.Contains(err.Error(), "size") {
		t.Fatalf("Invariant 1 violation not detected: %v", err)
	}
}

func TestDetectsOrphanNonTreeEdge(t *testing.T) {
	s := build(t)
	// Non-tree edge at level 2 between disconnected vertices 0 and 2.
	r := &adjlist.Rec{E: graph.Edge{U: 0, V: 2}, Level: 2}
	s.adj.Insert(r)
	s.f[2].AddCounts(0, 0, 1)
	s.f[2].AddCounts(2, 0, 1)
	s.recs = append(s.recs, r)
	err := s.check()
	if err == nil || !strings.Contains(err.Error(), "not connected") {
		t.Fatalf("orphan non-tree edge not detected: %v", err)
	}
}

func TestDetectsConnectivityDisagreement(t *testing.T) {
	s := build(t)
	// A tree edge present in the forests but absent from the record list
	// makes F_top connect more than the edge set justifies.
	s.f[2].Link(1, 2)
	err := s.check()
	if err == nil {
		t.Fatal("connectivity disagreement not detected")
	}
}
