package wal

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/chaos"
	"repro/internal/graph"
)

// TestChaosTornAppendRecovery: an armed pre-fsync torn write leaves a
// partial frame on disk; reopening truncates exactly the torn bytes and the
// log resumes at the right seq — acked records are untouched.
func TestChaosTornAppendRecovery(t *testing.T) {
	defer chaos.Disarm()
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path, 16)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 2; seq++ {
		if _, err := l.Append(Record{Seq: seq, Ins: []graph.Edge{{U: 0, V: int32(seq)}}}); err != nil {
			t.Fatal(err)
		}
	}
	// Hit counters are plan-scoped: this plan's first observed append tears.
	if err := chaos.Arm(1, chaos.SiteWALAppendPreFsync+":torn@nth=1"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(Record{Seq: 3, Ins: []graph.Edge{{U: 0, V: 3}}}); err == nil {
		t.Fatal("torn append reported success")
	}
	chaos.Disarm()
	// The torn frame is on disk past the two durable records.
	clean, _ := l.Size()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() <= clean-1 {
		t.Fatalf("no torn bytes on disk: file %d bytes", st.Size())
	}
	l.Close()

	l, err = Open(path, 16)
	if err != nil {
		t.Fatalf("reopen after torn append: %v", err)
	}
	defer l.Close()
	if l.LastSeq() != 2 {
		t.Fatalf("recovered LastSeq = %d, want 2", l.LastSeq())
	}
	if _, err := l.Append(Record{Seq: 3, Ins: []graph.Edge{{U: 1, V: 2}}}); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
}

// TestChaosOpenTornTail: the reopen hook appends garbage past the valid
// records; Open must truncate it and surface every durable record.
func TestChaosOpenTornTail(t *testing.T) {
	defer chaos.Disarm()
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path, 16)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 5; seq++ {
		if _, err := l.Append(Record{Seq: seq, Ins: []graph.Edge{{U: 0, V: int32(seq % 16)}}}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	if err := chaos.Arm(1, chaos.SiteWALOpenTornTail+":torn@times=1"); err != nil {
		t.Fatal(err)
	}
	l, err = Open(path, 16)
	chaos.Disarm()
	if err != nil {
		t.Fatalf("open with injected torn tail: %v", err)
	}
	defer l.Close()
	if l.LastSeq() != 5 {
		t.Fatalf("LastSeq = %d after torn-tail recovery, want 5", l.LastSeq())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Scan(f, nil)
	f.Close()
	if err != nil || res.Torn || res.Records != 5 {
		t.Fatalf("post-recovery scan: res=%+v err=%v", res, err)
	}
}

// TestChaosPostFsyncDurable: a post-fsync failure reports an error for a
// record that IS durable — the "crash between fsync and ack" image. The
// reopened log must contain it.
func TestChaosPostFsyncDurable(t *testing.T) {
	defer chaos.Disarm()
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := chaos.Arm(1, chaos.SiteWALAppendPostFsync+":fail@nth=1"); err != nil {
		t.Fatal(err)
	}
	_, err = l.Append(Record{Seq: 1, Ins: []graph.Edge{{U: 3, V: 4}}})
	chaos.Disarm()
	if err == nil {
		t.Fatal("post-fsync injection reported success")
	}
	l.Close()
	l, err = Open(path, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.LastSeq() != 1 {
		t.Fatalf("durable-but-unacked record lost: LastSeq = %d, want 1", l.LastSeq())
	}
}
