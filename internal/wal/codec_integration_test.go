package wal

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

func rec(seq uint64, edges ...int32) Record {
	r := Record{Seq: seq}
	for i := 0; i+1 < len(edges); i += 2 {
		r.Ins = append(r.Ins, graph.Edge{U: edges[i], V: edges[i+1]})
	}
	return r
}

// TestOpenWithCodecV2EndToEnd appends v2 records, reopens, scans and tails
// them back.
func TestOpenWithCodecV2EndToEnd(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := OpenWithCodec(path, 64, CodecV2)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 5; seq++ {
		if _, err := l.Append(rec(seq, int32(seq), int32(seq+1), int32(seq+2), int32(seq+3))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	f, _ := os.Open(path)
	res, err := Scan(f, nil)
	f.Close()
	if err != nil || res.Codec != 2 || res.Records != 5 || res.LastSeq != 5 || res.Torn {
		t.Fatalf("scan of v2 log: %+v, %v", res, err)
	}

	// Reopen requesting v1: the file's header wins for existing records and
	// further appends.
	l, err = OpenWithCodec(path, 64, CodecV1)
	if err != nil {
		t.Fatal(err)
	}
	if l.Codec().Version() != 2 {
		t.Fatalf("reopened log adopted codec %d, want the file's v2", l.Codec().Version())
	}
	if _, err := l.Append(rec(6, 1, 2)); err != nil {
		t.Fatal(err)
	}
	tl, err := OpenTail(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()
	if tl.Codec() != 2 {
		t.Fatalf("tail codec = %d, want 2", tl.Codec())
	}
	var got int
	for {
		r, ok, err := tl.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if r.Seq != uint64(got+1) {
			t.Fatalf("tail record seq %d, want %d", r.Seq, got+1)
		}
		got++
	}
	if got != 6 {
		t.Fatalf("tail yielded %d records, want 6", got)
	}

	// Reset is the codec upgrade point: the requested v1 takes over.
	if err := l.Reset(6); err != nil {
		t.Fatal(err)
	}
	if l.Codec().Version() != 1 {
		t.Fatalf("post-reset codec = %d, want the configured v1", l.Codec().Version())
	}
	l.Close()
}

// TestV1LogUpgradesAtReset proves the migration story: a v1 log written by
// the old code keeps appending v1 until Reset swaps in the configured v2.
func TestV1LogUpgradesAtReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path, 16) // plain Open = v1, as every pre-seam log was
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(rec(1, 3, 4)); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l, err = OpenWithCodec(path, 16, CodecV2)
	if err != nil {
		t.Fatal(err)
	}
	if l.Codec().Version() != 1 {
		t.Fatalf("v1 file adopted codec %d on reopen", l.Codec().Version())
	}
	if _, err := l.Append(rec(2, 5, 6)); err != nil {
		t.Fatal(err)
	}
	if err := l.Reset(2); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(rec(3, 7, 8)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	f, _ := os.Open(path)
	res, err := Scan(f, nil)
	f.Close()
	if err != nil || res.Codec != 2 || res.Records != 1 || res.LastSeq != 3 {
		t.Fatalf("post-upgrade scan: %+v, %v", res, err)
	}
}

// TestSyncFrontier exercises the AppendRecord/Sync split: the synced
// frontier trails appends and NextBelow refuses to surface past it.
func TestSyncFrontier(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := OpenWithCodec(path, 16, CodecV2)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for seq := uint64(1); seq <= 3; seq++ {
		if _, _, err := l.AppendRecord(rec(seq, 1, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if l.LastSeq() != 3 || l.SyncedSeq() != 0 {
		t.Fatalf("before sync: last=%d synced=%d", l.LastSeq(), l.SyncedSeq())
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if l.SyncedSeq() != 3 || l.Fsyncs() == 0 {
		t.Fatalf("after sync: synced=%d fsyncs=%d", l.SyncedSeq(), l.Fsyncs())
	}
	if _, _, err := l.AppendRecord(rec(4, 1, 2)); err != nil {
		t.Fatal(err)
	}

	tl, err := OpenTail(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()
	seen := uint64(0)
	for {
		r, raw, ok, err := tl.NextBelow(l.SyncedSeq())
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if len(raw) == 0 {
			t.Fatal("NextBelow returned empty raw payload")
		}
		if got, err := CodecV2.Decode(raw, 16, r.Seq-1); err != nil || got.Seq != r.Seq {
			t.Fatalf("raw payload does not decode back: %v", err)
		}
		seen = r.Seq
	}
	if seen != 3 {
		t.Fatalf("NextBelow surfaced through seq %d, want the synced frontier 3", seen)
	}
	// Frontier advances; the held-back record appears.
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if r, _, ok, err := tl.NextBelow(l.SyncedSeq()); err != nil || !ok || r.Seq != 4 {
		t.Fatalf("after frontier advance: %+v %v %v", r, ok, err)
	}
}

// TestTornTailMidGroupTruncatesToLastComplete is the wal half of the
// group-sync crash contract: a crash mid-group leaves complete records
// (possibly past the last fsync) plus a torn frame; reopen keeps every
// complete record — a superset of the synced prefix, which replay
// idempotence absorbs — and drops only the torn suffix.
func TestTornTailMidGroupTruncatesToLastComplete(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := OpenWithCodec(path, 16, CodecV2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(rec(1, 1, 2)); err != nil { // synced epoch
		t.Fatal(err)
	}
	for seq := uint64(2); seq <= 4; seq++ { // unsynced group
		if _, _, err := l.AppendRecord(rec(seq, 3, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if l.SyncedSeq() != 1 {
		t.Fatalf("synced = %d, want 1", l.SyncedSeq())
	}
	l.Close()

	// Tear the tail mid-frame: append half of what record 5 would be.
	frame, _ := encodeFrame(CodecV2, rec(5, 5, 6))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame[:len(frame)/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l, err = OpenWithCodec(path, 16, CodecV2)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.LastSeq() != 4 || l.SyncedSeq() != 4 {
		t.Fatalf("reopen: last=%d synced=%d, want both 4 (complete records kept, torn frame dropped)",
			l.LastSeq(), l.SyncedSeq())
	}
}
