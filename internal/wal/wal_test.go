package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

func openT(t *testing.T, path string, n int) *Log {
	t.Helper()
	l, err := Open(path, n)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func appendT(t *testing.T, l *Log, ins, del []graph.Edge) {
	t.Helper()
	rec := Record{Seq: l.LastSeq() + 1, Ins: ins, Del: del}
	n, err := l.Append(rec)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(EncodeRecord(rec)) {
		t.Fatalf("Append reported %d bytes, encoding is %d", n, len(EncodeRecord(rec)))
	}
}

func scanFile(t *testing.T, path string) (ScanResult, []Record) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var recs []Record
	res, err := Scan(f, func(r Record) error { recs = append(recs, r); return nil })
	if err != nil {
		t.Fatal(err)
	}
	return res, recs
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l := openT(t, path, 64)
	appendT(t, l, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}}, nil)
	appendT(t, l, nil, []graph.Edge{{U: 0, V: 1}})
	appendT(t, l, []graph.Edge{{U: 5, V: 6}}, []graph.Edge{{U: 2, V: 3}})
	if l.LastSeq() != 3 {
		t.Fatalf("LastSeq = %d, want 3", l.LastSeq())
	}
	l.Close()

	res, recs := scanFile(t, path)
	if res.N != 64 || res.Records != 3 || res.LastSeq != 3 || res.Torn {
		t.Fatalf("scan = %+v", res)
	}
	if len(recs[0].Ins) != 2 || len(recs[0].Del) != 0 ||
		recs[0].Ins[1] != (graph.Edge{U: 2, V: 3}) {
		t.Fatalf("record 0 = %+v", recs[0])
	}
	if len(recs[2].Ins) != 1 || len(recs[2].Del) != 1 {
		t.Fatalf("record 2 = %+v", recs[2])
	}

	// Reopen: seq continues.
	l = openT(t, path, 64)
	if l.LastSeq() != 3 {
		t.Fatalf("reopened LastSeq = %d", l.LastSeq())
	}
	appendT(t, l, []graph.Edge{{U: 7, V: 8}}, nil)
	l.Close()
	res, _ = scanFile(t, path)
	if res.Records != 4 || res.LastSeq != 4 {
		t.Fatalf("after reopen+append: %+v", res)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l := openT(t, path, 16)
	appendT(t, l, []graph.Edge{{U: 1, V: 2}}, nil)
	appendT(t, l, []graph.Edge{{U: 3, V: 4}}, nil)
	l.Close()
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: a whole record minus its last 3 bytes.
	torn := EncodeRecord(Record{Seq: 3, Ins: []graph.Edge{{U: 5, V: 6}}})
	if err := os.WriteFile(path, append(append([]byte{}, clean...), torn[:len(torn)-3]...), 0o644); err != nil {
		t.Fatal(err)
	}
	l = openT(t, path, 16)
	if l.LastSeq() != 2 {
		t.Fatalf("LastSeq after torn tail = %d, want 2", l.LastSeq())
	}
	// The torn bytes must be gone: the next append lands on a clean boundary.
	appendT(t, l, []graph.Edge{{U: 7, V: 8}}, nil)
	l.Close()
	res, recs := scanFile(t, path)
	if res.Records != 3 || res.Torn {
		t.Fatalf("after truncate+append: %+v", res)
	}
	if recs[2].Ins[0] != (graph.Edge{U: 7, V: 8}) {
		t.Fatalf("record 3 = %+v", recs[2])
	}
}

func TestCRCCorruptionStopsScan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l := openT(t, path, 16)
	appendT(t, l, []graph.Edge{{U: 1, V: 2}}, nil)
	off, _ := l.Size()
	appendT(t, l, []graph.Edge{{U: 3, V: 4}}, nil)
	appendT(t, l, []graph.Edge{{U: 5, V: 6}}, nil)
	l.Close()

	data, _ := os.ReadFile(path)
	data[off+frameLen+9] ^= 0xFF // flip a payload byte of record 2
	res, err := Scan(bytes.NewReader(data), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Record 2 fails its CRC; it and everything after is discarded.
	if res.Records != 1 || !res.Torn || res.LastSeq != 1 {
		t.Fatalf("scan of corrupted log = %+v", res)
	}
}

// TestOpenReinitializesSubHeaderStub: a file shorter than the header can
// only come from a crash during initial creation — it holds no record, so
// Open must re-initialize it instead of failing forever.
func TestOpenReinitializesSubHeaderStub(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	for _, stub := range [][]byte{{}, magicPrefix[:4], encodeHeader(16, 0, 1)[:HeaderLen-1]} {
		if err := os.WriteFile(path, stub, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(path, 16)
		if err != nil {
			t.Fatalf("Open over %d-byte stub: %v", len(stub), err)
		}
		appendT(t, l, []graph.Edge{{U: 1, V: 2}}, nil)
		l.Close()
		res, _ := scanFile(t, path)
		if res.Records != 1 || res.BaseSeq != 0 {
			t.Fatalf("after stub reinit: %+v", res)
		}
	}
}

func TestOpenRejectsUniverseMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	openT(t, path, 16).Close()
	if _, err := Open(path, 32); err == nil {
		t.Fatal("Open with mismatched n succeeded")
	}
}

func TestScanRejectsGarbageHeader(t *testing.T) {
	for _, data := range [][]byte{nil, []byte("short"), bytes.Repeat([]byte{0xAB}, 64)} {
		if _, err := Scan(bytes.NewReader(data), nil); err == nil {
			t.Fatalf("Scan(%d garbage bytes) accepted the header", len(data))
		}
	}
}

func TestResetPreservesSeqFloor(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l := openT(t, path, 16)
	appendT(t, l, []graph.Edge{{U: 1, V: 2}}, nil)
	appendT(t, l, []graph.Edge{{U: 3, V: 4}}, nil)
	if err := l.Reset(2); err != nil {
		t.Fatal(err)
	}
	if l.LastSeq() != 2 {
		t.Fatalf("LastSeq after reset = %d", l.LastSeq())
	}
	appendT(t, l, []graph.Edge{{U: 5, V: 6}}, nil)
	l.Close()
	res, recs := scanFile(t, path)
	if res.BaseSeq != 2 || res.Records != 1 || res.LastSeq != 3 {
		t.Fatalf("after reset: %+v", res)
	}
	if recs[0].Seq != 3 {
		t.Fatalf("surviving record seq = %d", recs[0].Seq)
	}
	// Reopen: the floor survives the restart too.
	l = openT(t, path, 16)
	if l.LastSeq() != 3 {
		t.Fatalf("reopened LastSeq = %d, want 3", l.LastSeq())
	}
	l.Close()
}

func TestAppendEnforcesSequentialSeq(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l := openT(t, path, 16)
	defer l.Close()
	if _, err := l.Append(Record{Seq: 2}); err == nil {
		t.Fatal("gap seq accepted")
	}
	appendT(t, l, []graph.Edge{{U: 1, V: 2}}, nil)
	if _, err := l.Append(Record{Seq: 1}); err == nil {
		t.Fatal("repeated seq accepted")
	}
}

func TestScanRejectsOutOfUniverseEdges(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(encodeHeader(4, 0, 1))
	buf.Write(EncodeRecord(Record{Seq: 1, Ins: []graph.Edge{{U: 1, V: 9}}}))
	res, err := Scan(bytes.NewReader(buf.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 0 || !res.Torn {
		t.Fatalf("out-of-universe edge accepted: %+v", res)
	}
}

// FuzzWALDecode feeds arbitrary bytes to the WAL reader. The contract under
// fuzzing: never panic, never over-read, keep the strictly-sequential seq
// invariant, and only ever accept CRC-clean frames (checked structurally:
// every accepted record re-encodes to the exact bytes at its offset).
func FuzzWALDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeHeader(8, 0, 1))
	f.Add(bytes.Repeat([]byte{0x7F}, 48))
	valid := append([]byte{}, encodeHeader(8, 0, 1)...)
	valid = append(valid, EncodeRecord(Record{Seq: 1, Ins: []graph.Edge{{U: 0, V: 1}}})...)
	valid = append(valid, EncodeRecord(Record{Seq: 2, Del: []graph.Edge{{U: 0, V: 1}}})...)
	f.Add(valid)
	f.Add(valid[:len(valid)-5]) // torn tail
	corrupt := append([]byte{}, valid...)
	corrupt[len(corrupt)-3] ^= 0x01
	f.Add(corrupt) // CRC-violating tail
	f.Add(append([]byte{}, encodeHeader(1<<30, 42, 1)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		var recs []Record
		res, err := Scan(bytes.NewReader(data), func(r Record) error {
			recs = append(recs, r)
			return nil
		})
		if err != nil {
			if len(recs) != 0 {
				t.Fatalf("records delivered alongside error %v", err)
			}
			return
		}
		if res.ValidLen < headerLen || res.ValidLen > int64(len(data)) {
			t.Fatalf("ValidLen %d outside [header, len] for %d bytes", res.ValidLen, len(data))
		}
		if res.LastSeq-res.BaseSeq != uint64(res.Records) || len(recs) != res.Records {
			t.Fatalf("seq accounting broken: %+v with %d records", res, len(recs))
		}
		// Every accepted record must re-encode to the exact on-disk bytes —
		// i.e. only CRC-clean, canonically framed records are ever accepted.
		off := int64(headerLen)
		for i, r := range recs {
			enc := EncodeRecord(r)
			if !bytes.Equal(enc, data[off:off+int64(len(enc))]) {
				t.Fatalf("record %d does not round-trip at offset %d", i, off)
			}
			off += int64(len(enc))
			for _, e := range append(r.Ins, r.Del...) {
				if int(e.U) >= res.N || int(e.V) >= res.N || e.U < 0 || e.V < 0 {
					t.Fatalf("record %d leaked out-of-universe edge %v", i, e)
				}
			}
		}
		if off != res.ValidLen {
			t.Fatalf("ValidLen %d but records end at %d", res.ValidLen, off)
		}
	})
}
