package codec

import (
	"bytes"
	"testing"

	"repro/internal/graph"
)

// FuzzCodecV2 drives the v2 codec from both directions with one corpus.
//
// Interpreting the input as an edge stream: encode the derived record, and
// decode(encode(r)) must reproduce r exactly AND re-encode byte-identical
// (the canonical-encoding contract replication and the sync scheduler's
// raw shipping rely on).
//
// Interpreting the same input as a hostile payload: Decode must never
// panic, and whatever it accepts must re-encode to the canonical bytes for
// the decoded record.
func FuzzCodecV2(f *testing.F) {
	f.Add([]byte{})
	f.Add(V2.Encode(nil, Record{Seq: 1, Ins: []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}}))
	f.Add(V2.Encode(nil, Record{Seq: 1, Del: []graph.Edge{{U: 9, V: 3}}}))
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 1 << 16

		// Direction 1: data as an edge stream -> canonical round trip.
		var r Record
		r.Seq = 1
		for i := 0; i+4 <= len(data) && i < 4*200; i += 4 {
			e := graph.Edge{
				U: int32(uint32(data[i]) | uint32(data[i+1])<<8),
				V: int32(uint32(data[i+2]) | uint32(data[i+3])<<8),
			}
			if i%8 == 0 {
				r.Ins = append(r.Ins, e)
			} else {
				r.Del = append(r.Del, e)
			}
		}
		enc := V2.Encode(nil, r)
		dec, err := V2.Decode(enc, n, 0)
		if err != nil {
			t.Fatalf("Decode(Encode(r)) failed: %v\nrecord: %+v", err, r)
		}
		if dec.Seq != r.Seq || len(dec.Ins) != len(r.Ins) || len(dec.Del) != len(r.Del) {
			t.Fatalf("round trip shape mismatch: %+v vs %+v", dec, r)
		}
		for i := range r.Ins {
			if dec.Ins[i] != r.Ins[i] {
				t.Fatalf("Ins[%d]: %v vs %v", i, dec.Ins[i], r.Ins[i])
			}
		}
		for i := range r.Del {
			if dec.Del[i] != r.Del[i] {
				t.Fatalf("Del[%d]: %v vs %v", i, dec.Del[i], r.Del[i])
			}
		}
		if re := V2.Encode(nil, dec); !bytes.Equal(enc, re) {
			t.Fatalf("re-encode not byte-identical:\n %x\n %x", enc, re)
		}

		// Direction 2: data as a hostile payload -> no panic, and anything
		// accepted is internally consistent.
		for _, prev := range []uint64{0, 41} {
			got, err := V2.Decode(data, n, prev)
			if err != nil {
				continue
			}
			if got.Seq != prev+1 {
				t.Fatalf("accepted payload with seq %d after prev %d", got.Seq, prev)
			}
			for _, e := range append(append([]graph.Edge{}, got.Ins...), got.Del...) {
				if e.U < 0 || e.V < 0 || int(e.U) >= n || int(e.V) >= n {
					t.Fatalf("accepted out-of-universe edge %v", e)
				}
			}
		}
	})
}

// FuzzCodecV1 holds the legacy codec to the same never-panic bar.
func FuzzCodecV1(f *testing.F) {
	f.Add(V1.Encode(nil, Record{Seq: 1, Ins: []graph.Edge{{U: 0, V: 1}}}))
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 1 << 16
		if got, err := V1.Decode(data, n, 0); err == nil {
			if re := V1.Encode(nil, got); !bytes.Equal(data, re) {
				t.Fatalf("v1 accepted non-canonical payload:\n %x\n %x", data, re)
			}
		}
	})
}
