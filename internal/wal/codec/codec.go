// Package codec implements the WAL record payload encodings behind the
// wal.Codec seam. A codec turns one epoch record into the payload bytes of
// a framed WAL entry and back; the containing file's header names the codec
// for every record in that file via its format-version byte (the last byte
// of the WAL magic), so a log written under one codec is always read back
// with the same one, and the configured codec takes effect only when a
// fresh file is created (open of an empty path, or the post-checkpoint
// Reset swap).
//
// Two codecs exist:
//
//	v1 (version byte 1) — the raw fixed-width format every log before the
//	codec seam was written in: seq uint64 | nIns uint32 | nDel uint32 |
//	(u uint32, v uint32) per edge. Decoding is allocation-exact and the
//	encoding of a record is byte-identical to the pre-seam writer, which is
//	what keeps old logs restorable.
//
//	v2 (version byte 2) — delta+varint for the near-sorted edge batches the
//	batch-dynamic structure produces: seq uint64 | uvarint nIns | uvarint
//	nDel | per list, zigzag-varint deltas of (u, v) against the previous
//	edge in that list (both components reset to 0 at each list boundary).
//	Sorted runs of edges collapse to one or two bytes per component.
//
// Every codec's payload begins with the record seq as 8 little-endian
// bytes (see Seq), encoding is canonical (Decode(Encode(r)) re-encodes to
// the identical bytes), and Decode never panics on arbitrary input — the
// torn-tail recovery contract of the containing log depends on it.
//
//conn:decoders
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/graph"
)

// Record is one durable epoch: the raw insert and delete batches the
// dispatcher coalesced, in epoch order. Replaying a record is
// InsertEdges(Ins) followed by DeleteEdges(Del) — the core's batch
// operations ignore duplicates, present inserts and absent deletes, so the
// raw batches reproduce exactly the state the epoch committed.
type Record struct {
	Seq uint64
	Ins []graph.Edge
	Del []graph.Edge
}

// Codec is one payload encoding. Implementations are stateless and safe
// for concurrent use.
type Codec interface {
	// Version is the format-version byte a file header carries to name
	// this codec (the last byte of the WAL magic).
	Version() byte
	// Name is the codec's human-facing name ("v1", "v2") for flags, stats
	// output and error messages.
	Name() string
	// Encode appends r's payload (no frame) to dst and returns the
	// extended slice. The encoding is canonical: re-encoding a decoded
	// record reproduces the same bytes.
	Encode(dst []byte, r Record) []byte
	// Decode validates and decodes a payload. n bounds vertex ids;
	// prevSeq enforces the strictly-sequential seq invariant. It never
	// panics on arbitrary input.
	Decode(p []byte, n int, prevSeq uint64) (Record, error)
}

// V1 is the raw fixed-width codec (format version 1).
var V1 Codec = rawV1{}

// V2 is the delta+varint codec (format version 2).
var V2 Codec = deltaV2{}

// ByVersion returns the codec a file header's version byte names.
func ByVersion(v byte) (Codec, bool) {
	switch v {
	case 1:
		return V1, true
	case 2:
		return V2, true
	}
	return nil, false
}

// ByName resolves a codec by its flag-facing name.
func ByName(name string) (Codec, bool) {
	switch name {
	case "v1", "1":
		return V1, true
	case "v2", "2":
		return V2, true
	}
	return nil, false
}

// RawSize returns the v1 (uncompressed fixed-width) payload size of r —
// the baseline the bytes-before/after-compression counters compare
// against. The result is derived from the record's own slice lengths, not
// from untrusted input.
//
//conn:validated-len
func RawSize(r Record) int {
	return rawMinLen + 8*(len(r.Ins)+len(r.Del))
}

// Seq extracts the sequence number from an encoded payload without
// decoding it: every codec begins its payload with the seq as 8
// little-endian bytes.
func Seq(p []byte) (uint64, bool) {
	if len(p) < 8 {
		return 0, false
	}
	return binary.LittleEndian.Uint64(p), true
}

// rawMinLen is the v1 fixed prefix: seq + two uint32 counts.
const rawMinLen = 8 + 4 + 4

// rawV1 is the pre-seam fixed-width format.
type rawV1 struct{}

func (rawV1) Version() byte { return 1 }
func (rawV1) Name() string  { return "v1" }

func (rawV1) Encode(dst []byte, r Record) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, r.Seq)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Ins)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Del)))
	for _, es := range [2][]graph.Edge{r.Ins, r.Del} {
		for _, e := range es {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(e.U))
			dst = binary.LittleEndian.AppendUint32(dst, uint32(e.V))
		}
	}
	return dst
}

func (rawV1) Decode(p []byte, n int, prevSeq uint64) (Record, error) {
	if len(p) < rawMinLen {
		return Record{}, errors.New("codec: short v1 record payload")
	}
	r := Record{Seq: binary.LittleEndian.Uint64(p)}
	nIns := int(binary.LittleEndian.Uint32(p[8:]))
	nDel := int(binary.LittleEndian.Uint32(p[12:]))
	if nIns < 0 || nDel < 0 || rawMinLen+8*(nIns+nDel) != len(p) {
		return Record{}, errors.New("codec: v1 edge counts disagree with payload length")
	}
	if r.Seq != prevSeq+1 {
		return Record{}, fmt.Errorf("codec: record seq %d after %d", r.Seq, prevSeq)
	}
	es := make([]graph.Edge, nIns+nDel)
	for i := range es {
		u := int32(binary.LittleEndian.Uint32(p[rawMinLen+8*i:]))
		v := int32(binary.LittleEndian.Uint32(p[rawMinLen+8*i+4:]))
		if u < 0 || v < 0 || int(u) >= n || int(v) >= n {
			return Record{}, fmt.Errorf("codec: edge {%d,%d} outside universe [0,%d)", u, v, n)
		}
		es[i] = graph.Edge{U: u, V: v}
	}
	r.Ins, r.Del = es[:nIns:nIns], es[nIns:]
	return r, nil
}

// deltaV2 is the delta+varint format for near-sorted edge batches.
type deltaV2 struct{}

func (deltaV2) Version() byte { return 2 }
func (deltaV2) Name() string  { return "v2" }

func (deltaV2) Encode(dst []byte, r Record) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, r.Seq)
	dst = binary.AppendUvarint(dst, uint64(len(r.Ins)))
	dst = binary.AppendUvarint(dst, uint64(len(r.Del)))
	for _, es := range [2][]graph.Edge{r.Ins, r.Del} {
		prevU, prevV := int64(0), int64(0)
		for _, e := range es {
			dst = binary.AppendVarint(dst, int64(e.U)-prevU)
			dst = binary.AppendVarint(dst, int64(e.V)-prevV)
			prevU, prevV = int64(e.U), int64(e.V)
		}
	}
	return dst
}

func (deltaV2) Decode(p []byte, n int, prevSeq uint64) (Record, error) {
	if len(p) < 8+2 {
		return Record{}, errors.New("codec: short v2 record payload")
	}
	r := Record{Seq: binary.LittleEndian.Uint64(p)}
	if r.Seq != prevSeq+1 {
		return Record{}, fmt.Errorf("codec: record seq %d after %d", r.Seq, prevSeq)
	}
	rest := p[8:]
	nIns, k := binary.Uvarint(rest)
	if k <= 0 {
		return Record{}, errors.New("codec: v2 insert count truncated")
	}
	rest = rest[k:]
	nDel, k := binary.Uvarint(rest)
	if k <= 0 {
		return Record{}, errors.New("codec: v2 delete count truncated")
	}
	rest = rest[k:]
	// Each encoded edge takes at least two bytes (one varint byte per
	// component), so counts beyond half the remaining payload are
	// corruption, not an allocation request. Checking the counts
	// individually first keeps the sum overflow-free.
	if nIns > uint64(len(rest)) || nDel > uint64(len(rest)) {
		return Record{}, errors.New("codec: v2 edge counts exceed payload")
	}
	total := nIns + nDel
	if total > uint64(len(rest))/2 {
		return Record{}, errors.New("codec: v2 edge counts exceed payload")
	}
	es := make([]graph.Edge, int(total))
	i := 0
	for _, cnt := range [2]uint64{nIns, nDel} {
		prevU, prevV := int64(0), int64(0)
		for j := uint64(0); j < cnt; j++ {
			du, ku := binary.Varint(rest)
			if ku <= 0 {
				return Record{}, errors.New("codec: v2 edge delta truncated")
			}
			rest = rest[ku:]
			dv, kv := binary.Varint(rest)
			if kv <= 0 {
				return Record{}, errors.New("codec: v2 edge delta truncated")
			}
			rest = rest[kv:]
			u, v := prevU+du, prevV+dv
			if u < 0 || v < 0 || u >= int64(n) || v >= int64(n) {
				return Record{}, fmt.Errorf("codec: edge {%d,%d} outside universe [0,%d)", u, v, n)
			}
			es[i] = graph.Edge{U: int32(u), V: int32(v)}
			i++
			prevU, prevV = u, v
		}
	}
	if len(rest) != 0 {
		return Record{}, errors.New("codec: v2 trailing bytes after edges")
	}
	r.Ins, r.Del = es[:nIns:nIns], es[nIns:]
	return r, nil
}
