package codec

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func testRecords() []Record {
	sorted := make([]graph.Edge, 0, 256)
	for i := int32(0); i < 256; i++ {
		sorted = append(sorted, graph.Edge{U: i * 3, V: i*3 + 1})
	}
	rng := rand.New(rand.NewSource(7))
	random := make([]graph.Edge, 0, 100)
	for i := 0; i < 100; i++ {
		random = append(random, graph.Edge{U: rng.Int31n(1 << 20), V: rng.Int31n(1 << 20)})
	}
	return []Record{
		{Seq: 1},
		{Seq: 1, Ins: []graph.Edge{{U: 0, V: 1}}},
		{Seq: 1, Del: []graph.Edge{{U: 5, V: 9}}},
		{Seq: 1, Ins: sorted, Del: sorted[:17]},
		{Seq: 1, Ins: random, Del: random},
		{Seq: 1, Ins: []graph.Edge{{U: 1<<20 - 1, V: 0}, {U: 0, V: 1<<20 - 1}}},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	const n = 1 << 20
	for _, c := range []Codec{V1, V2} {
		for i, want := range testRecords() {
			enc := c.Encode(nil, want)
			got, err := c.Decode(enc, n, want.Seq-1)
			if err != nil {
				t.Fatalf("%s record %d: Decode: %v", c.Name(), i, err)
			}
			if got.Seq != want.Seq || len(got.Ins) != len(want.Ins) || len(got.Del) != len(want.Del) {
				t.Fatalf("%s record %d: shape mismatch: got %+v", c.Name(), i, got)
			}
			for j := range want.Ins {
				if got.Ins[j] != want.Ins[j] {
					t.Fatalf("%s record %d: Ins[%d] = %v, want %v", c.Name(), i, j, got.Ins[j], want.Ins[j])
				}
			}
			for j := range want.Del {
				if got.Del[j] != want.Del[j] {
					t.Fatalf("%s record %d: Del[%d] = %v, want %v", c.Name(), i, j, got.Del[j], want.Del[j])
				}
			}
			re := c.Encode(nil, got)
			if !bytes.Equal(enc, re) {
				t.Fatalf("%s record %d: re-encode differs: %x vs %x", c.Name(), i, enc, re)
			}
			if s, ok := Seq(enc); !ok || s != want.Seq {
				t.Fatalf("%s record %d: Seq(enc) = %d,%v", c.Name(), i, s, ok)
			}
		}
	}
}

// TestCodecV1ByteCompat pins v1's encoding to the pre-seam fixed-width
// layout byte for byte — old WAL files must keep decoding forever.
func TestCodecV1ByteCompat(t *testing.T) {
	r := Record{Seq: 0x0102030405060708, Ins: []graph.Edge{{U: 1, V: 2}}, Del: []graph.Edge{{U: 3, V: 4}}}
	want := []byte{
		8, 7, 6, 5, 4, 3, 2, 1, // seq LE
		1, 0, 0, 0, // nIns
		1, 0, 0, 0, // nDel
		1, 0, 0, 0, 2, 0, 0, 0, // ins edge
		3, 0, 0, 0, 4, 0, 0, 0, // del edge
	}
	if got := V1.Encode(nil, r); !bytes.Equal(got, want) {
		t.Fatalf("v1 encoding drifted:\n got %x\nwant %x", got, want)
	}
	if RawSize(r) != len(want) {
		t.Fatalf("RawSize = %d, want %d", RawSize(r), len(want))
	}
}

// TestCodecV2Compresses checks the point of v2: near-sorted batches shrink
// well below the fixed-width baseline.
func TestCodecV2Compresses(t *testing.T) {
	ins := make([]graph.Edge, 4096)
	for i := range ins {
		ins[i] = graph.Edge{U: int32(i), V: int32(i + 1)}
	}
	r := Record{Seq: 9, Ins: ins}
	v2len := len(V2.Encode(nil, r))
	raw := RawSize(r)
	if v2len*3 > raw {
		t.Fatalf("v2 encoded %d bytes, raw %d — expected at least 3x shrink on a sorted batch", v2len, raw)
	}
}

func TestCodecRegistry(t *testing.T) {
	for _, c := range []Codec{V1, V2} {
		got, ok := ByVersion(c.Version())
		if !ok || got.Name() != c.Name() {
			t.Fatalf("ByVersion(%d) = %v, %v", c.Version(), got, ok)
		}
		got, ok = ByName(c.Name())
		if !ok || got.Version() != c.Version() {
			t.Fatalf("ByName(%q) = %v, %v", c.Name(), got, ok)
		}
	}
	if _, ok := ByVersion(0); ok {
		t.Fatal("ByVersion(0) accepted")
	}
	if _, ok := ByName("gzip"); ok {
		t.Fatal(`ByName("gzip") accepted`)
	}
}

func TestCodecDecodeRejects(t *testing.T) {
	for _, c := range []Codec{V1, V2} {
		enc := c.Encode(nil, Record{Seq: 5, Ins: []graph.Edge{{U: 7, V: 8}}})
		if _, err := c.Decode(enc, 1<<20, 3); err == nil {
			t.Fatalf("%s: accepted seq gap", c.Name())
		}
		if _, err := c.Decode(enc, 5, 4); err == nil {
			t.Fatalf("%s: accepted out-of-universe edge", c.Name())
		}
		if _, err := c.Decode(enc[:len(enc)-1], 1<<20, 4); err == nil {
			t.Fatalf("%s: accepted truncated payload", c.Name())
		}
		if _, err := c.Decode(append(enc[:len(enc):len(enc)], 0), 1<<20, 4); err == nil {
			t.Fatalf("%s: accepted trailing bytes", c.Name())
		}
	}
}
