package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

func tailRecord(seq uint64, edges ...int32) Record {
	r := Record{Seq: seq}
	for i := 0; i+1 < len(edges); i += 2 {
		r.Ins = append(r.Ins, graph.Edge{U: edges[i], V: edges[i+1]})
	}
	return r
}

// TestTailFollowsLiveLog: a Tail opened on a log that is still being
// appended sees each record as it lands — Next reports "not yet" at the end
// of valid data and succeeds after the next append.
func TestTailFollowsLiveLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	tail, err := OpenTail(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()
	if _, ok, err := tail.Next(); ok || err != nil {
		t.Fatalf("Next on empty log = ok=%v err=%v, want caught-up", ok, err)
	}

	for seq := uint64(1); seq <= 20; seq++ {
		if _, err := l.Append(tailRecord(seq, int32(seq%64), int32((seq+1)%64))); err != nil {
			t.Fatal(err)
		}
		rec, ok, err := tail.Next()
		if err != nil || !ok {
			t.Fatalf("Next after append %d = ok=%v err=%v", seq, ok, err)
		}
		if rec.Seq != seq {
			t.Fatalf("Next returned seq %d, want %d", rec.Seq, seq)
		}
		if _, ok, _ := tail.Next(); ok {
			t.Fatalf("Next past the end returned a record at seq %d", seq)
		}
	}
	if got := tail.LastSeq(); got != 20 {
		t.Fatalf("tail.LastSeq = %d, want 20", got)
	}
}

// TestTailSkipsToFromSeq: records at or below fromSeq are skipped, not
// returned.
func TestTailSkipsToFromSeq(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 10; seq++ {
		if _, err := l.Append(tailRecord(seq, 1, 2)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	tail, err := OpenTail(path, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()
	for want := uint64(8); want <= 10; want++ {
		rec, ok, err := tail.Next()
		if err != nil || !ok || rec.Seq != want {
			t.Fatalf("Next = (%d, %v, %v), want seq %d", rec.Seq, ok, err, want)
		}
	}
	if _, ok, _ := tail.Next(); ok {
		t.Fatal("Next past the last record returned a record")
	}
}

// TestTailPartialFrame: a frame whose bytes are only partially on disk (a
// concurrent append in flight) reads as "not yet" and completes later.
func TestTailPartialFrame(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l, err := Open(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(tailRecord(1, 1, 2)); err != nil {
		t.Fatal(err)
	}
	l.Close()

	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	enc := EncodeRecord(tailRecord(2, 3, 4))
	for cut := 1; cut < len(enc); cut++ {
		part := filepath.Join(dir, "part.log")
		if err := os.WriteFile(part, append(append([]byte(nil), full...), enc[:cut]...), 0o644); err != nil {
			t.Fatal(err)
		}
		tail, err := OpenTail(part, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok, err := tail.Next(); ok || err != nil {
			t.Fatalf("cut=%d: partial frame read as ok=%v err=%v", cut, ok, err)
		}
		// Complete the frame: the same cursor must now return the record.
		f, err := os.OpenFile(part, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(enc[cut:]); err != nil {
			t.Fatal(err)
		}
		f.Close()
		rec, ok, err := tail.Next()
		if err != nil || !ok || rec.Seq != 2 {
			t.Fatalf("cut=%d: completed frame = (%d, %v, %v), want seq 2", cut, rec.Seq, ok, err)
		}
		tail.Close()
	}
}

// TestTailBelowFloor: asking for records the log no longer holds (fromSeq
// under the checkpoint floor) must fail with ErrSeqGone, the signal to run
// snapshot catch-up instead.
func TestTailBelowFloor(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 5; seq++ {
		if _, err := l.Append(tailRecord(seq, 1, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Reset(5); err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	if _, err := OpenTail(path, 3); !errors.Is(err, ErrSeqGone) {
		t.Fatalf("OpenTail below floor: got %v, want ErrSeqGone", err)
	}
	tail, err := OpenTail(path, 5)
	if err != nil {
		t.Fatalf("OpenTail at floor: %v", err)
	}
	tail.Close()
}

// TestLogExposesFloor: Open and Reset publish the checkpoint floor through
// BaseSeq, so callers no longer re-derive it from the file header.
func TestLogExposesFloor(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.BaseSeq(); got != 0 {
		t.Fatalf("fresh log BaseSeq = %d, want 0", got)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if _, err := l.Append(tailRecord(seq, 1, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Reset(3); err != nil {
		t.Fatal(err)
	}
	if got := l.BaseSeq(); got != 3 {
		t.Fatalf("BaseSeq after Reset(3) = %d, want 3", got)
	}
	l.Close()

	l2, err := Open(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.BaseSeq(); got != 3 {
		t.Fatalf("BaseSeq after reopen = %d, want 3", got)
	}
	if got := l2.LastSeq(); got != 3 {
		t.Fatalf("LastSeq after reopen = %d, want 3", got)
	}
}
