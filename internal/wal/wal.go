// Package wal implements the write-ahead log behind conn.Batcher's
// WithDurability mode: one length-prefixed, CRC-checksummed record per
// committed epoch that mutated the graph, fsynced before the epoch is
// applied or acknowledged — group commit in the classic sense, one fsync
// amortized over the whole coalesced batch, exactly the batching argument
// the paper makes for its work bounds.
//
// File layout (all integers little-endian):
//
//	header  : magic "connwal\x01" (8) | n uint32 | baseSeq uint64 | crc32c uint32
//	record* : payloadLen uint32 | crc32c(payload) uint32 | payload
//	payload : seq uint64 | nIns uint32 | nDel uint32 | nIns+nDel edges (u,v uint32 each)
//
// n is the vertex universe the log belongs to. baseSeq is the sequence
// number already captured by a checkpoint when the log was last reset; every
// record in the file has seq > baseSeq, and seqs are strictly sequential
// (baseSeq+1, baseSeq+2, ...).
//
// Recovery contract: Scan accepts any byte stream and never panics. It
// stops cleanly at the first frame that is incomplete (torn tail from a
// crash mid-write), fails its CRC, or decodes inconsistently — everything
// from that offset on is discarded and reported via ScanResult.Torn. Open
// truncates a torn tail so the next append starts at a record boundary.
//
// The log is also the replication transport (internal/repl): Tail is a
// read-only cursor that follows a live log from a given seq — replication
// catch-up streams a follower the records it missed while the dispatcher
// keeps appending.
//
//conn:decoders
//conn:durable-files
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"

	"repro/internal/chaos"
	"repro/internal/graph"
)

// HeaderLen is the byte length of the file header; records start here.
const HeaderLen = 8 + 4 + 8 + 4

const (
	headerLen = HeaderLen
	frameLen  = 4 + 4 // payloadLen + crc
	recMinLen = 8 + 4 + 4

	// maxPayload bounds a single record (~16M edges); anything larger is
	// treated as corruption rather than an allocation request.
	maxPayload = 1 << 27
)

var magic = [8]byte{'c', 'o', 'n', 'n', 'w', 'a', 'l', 1}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrBadHeader is returned when a WAL file exists but its header is missing,
// truncated, checksum-corrupt, or disagrees with the expected universe.
var ErrBadHeader = errors.New("wal: bad or missing file header")

// Record is one durable epoch: the raw insert and delete batches the
// dispatcher coalesced, in epoch order. Replaying a record is
// InsertEdges(Ins) followed by DeleteEdges(Del) — the core's batch
// operations ignore duplicates, present inserts and absent deletes, so the
// raw batches reproduce exactly the state the epoch committed.
type Record struct {
	Seq uint64
	Ins []graph.Edge
	Del []graph.Edge
}

func encodeHeader(n int, baseSeq uint64) []byte {
	buf := make([]byte, headerLen)
	copy(buf, magic[:])
	binary.LittleEndian.PutUint32(buf[8:], uint32(n))
	binary.LittleEndian.PutUint64(buf[12:], baseSeq)
	binary.LittleEndian.PutUint32(buf[20:], crc32.Checksum(buf[:20], castagnoli))
	return buf
}

func decodeHeader(buf []byte) (n int, baseSeq uint64, err error) {
	if len(buf) < headerLen || [8]byte(buf[:8]) != magic {
		return 0, 0, ErrBadHeader
	}
	if crc32.Checksum(buf[:20], castagnoli) != binary.LittleEndian.Uint32(buf[20:24]) {
		return 0, 0, fmt.Errorf("%w: header checksum mismatch", ErrBadHeader)
	}
	n = int(binary.LittleEndian.Uint32(buf[8:12]))
	if n <= 0 {
		return 0, 0, fmt.Errorf("%w: vertex count %d", ErrBadHeader, n)
	}
	return n, binary.LittleEndian.Uint64(buf[12:20]), nil
}

// EncodeRecord serializes one record as a framed WAL entry.
func EncodeRecord(r Record) []byte {
	payload := recMinLen + 8*(len(r.Ins)+len(r.Del))
	buf := make([]byte, frameLen+payload)
	binary.LittleEndian.PutUint32(buf[0:], uint32(payload))
	p := buf[frameLen:]
	binary.LittleEndian.PutUint64(p[0:], r.Seq)
	binary.LittleEndian.PutUint32(p[8:], uint32(len(r.Ins)))
	binary.LittleEndian.PutUint32(p[12:], uint32(len(r.Del)))
	o := recMinLen
	for _, es := range [2][]graph.Edge{r.Ins, r.Del} {
		for _, e := range es {
			binary.LittleEndian.PutUint32(p[o:], uint32(e.U))
			binary.LittleEndian.PutUint32(p[o+4:], uint32(e.V))
			o += 8
		}
	}
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(p, castagnoli))
	return buf
}

// decodePayload validates and decodes a CRC-clean payload. n bounds vertex
// ids; prevSeq enforces the strictly-sequential seq invariant.
func decodePayload(p []byte, n int, prevSeq uint64) (Record, error) {
	if len(p) < recMinLen {
		return Record{}, errors.New("wal: short record payload")
	}
	r := Record{Seq: binary.LittleEndian.Uint64(p)}
	nIns := int(binary.LittleEndian.Uint32(p[8:]))
	nDel := int(binary.LittleEndian.Uint32(p[12:]))
	if nIns < 0 || nDel < 0 || recMinLen+8*(nIns+nDel) != len(p) {
		return Record{}, errors.New("wal: record edge counts disagree with payload length")
	}
	if r.Seq != prevSeq+1 {
		return Record{}, fmt.Errorf("wal: record seq %d after %d", r.Seq, prevSeq)
	}
	es := make([]graph.Edge, nIns+nDel)
	for i := range es {
		u := int32(binary.LittleEndian.Uint32(p[recMinLen+8*i:]))
		v := int32(binary.LittleEndian.Uint32(p[recMinLen+8*i+4:]))
		if u < 0 || v < 0 || int(u) >= n || int(v) >= n {
			return Record{}, fmt.Errorf("wal: edge {%d,%d} outside universe [0,%d)", u, v, n)
		}
		es[i] = graph.Edge{U: u, V: v}
	}
	r.Ins, r.Del = es[:nIns:nIns], es[nIns:]
	return r, nil
}

// ReadHeader reads and validates only the file header, returning the vertex
// universe and the checkpoint floor. Recovery uses it to cross-check a WAL
// against a checkpoint before paying for a full replay scan.
func ReadHeader(r io.Reader) (n int, baseSeq uint64, err error) {
	hdr := make([]byte, headerLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, 0, ErrBadHeader
	}
	return decodeHeader(hdr)
}

// ScanResult summarizes one pass over a WAL byte stream.
type ScanResult struct {
	N        int    // vertex universe from the header
	BaseSeq  uint64 // checkpoint floor recorded in the header
	LastSeq  uint64 // seq of the last valid record (BaseSeq if none)
	Records  int    // valid records decoded
	ValidLen int64  // offset one past the last valid record
	Torn     bool   // trailing bytes after ValidLen were discarded
}

// Scan reads a WAL byte stream, invoking fn (if non-nil) for each valid
// record in order. It never panics on arbitrary input: a bad header returns
// ErrBadHeader; an incomplete, checksum-corrupt, or inconsistent frame stops
// the scan cleanly with Torn set. fn's slices are freshly allocated and may
// be retained. A non-nil fn error aborts the scan and is returned.
func Scan(r io.Reader, fn func(Record) error) (ScanResult, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var res ScanResult
	hdr := make([]byte, headerLen)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return res, ErrBadHeader
	}
	n, base, err := decodeHeader(hdr)
	if err != nil {
		return res, err
	}
	res.N, res.BaseSeq, res.LastSeq = n, base, base
	res.ValidLen = headerLen
	frame := make([]byte, frameLen)
	var payload []byte
	for {
		if _, err := io.ReadFull(br, frame); err != nil {
			res.Torn = err != io.EOF
			return res, nil
		}
		plen := int(binary.LittleEndian.Uint32(frame))
		if plen < recMinLen || plen > maxPayload {
			res.Torn = true
			return res, nil
		}
		if cap(payload) < plen {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if _, err := io.ReadFull(br, payload); err != nil {
			res.Torn = true
			return res, nil
		}
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(frame[4:]) {
			res.Torn = true
			return res, nil
		}
		rec, err := decodePayload(payload, n, res.LastSeq)
		if err != nil {
			res.Torn = true
			return res, nil
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return res, err
			}
		}
		res.Records++
		res.LastSeq = rec.Seq
		res.ValidLen += int64(frameLen + plen)
	}
}

// Log is an append-only WAL handle. Appends, resets and Close are owned by a
// single goroutine (the Batcher's dispatcher); LastSeq and BaseSeq are atomic
// and may be read from any goroutine — replication stats and catch-up
// decisions read them concurrently with appends. Construct with Open.
type Log struct {
	path    string
	f       *os.File
	n       int
	lastSeq atomic.Uint64
	baseSeq atomic.Uint64
	closed  bool
}

// Open opens (or creates) the WAL at path for a universe of n vertices. An
// existing file is scanned end to end: its header must match n, a torn tail
// is truncated away, and appends continue after the last valid record's
// seq. A new file is created with an fsynced header and an fsynced parent
// directory so the log itself survives a crash immediately after creation.
func Open(path string, n int) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	l := &Log{path: path, f: f, n: n}
	if st.Size() < headerLen {
		// Empty, or a partial header from a crash during initial creation —
		// shorter than the header, the file cannot hold any record, so
		// re-initializing loses nothing. (A post-checkpoint floor can never
		// be in this state: Reset replaces the file atomically.)
		if err := f.Truncate(0); err != nil {
			_ = f.Close()
			return nil, err
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			_ = f.Close()
			return nil, err
		}
		if err := l.writeFresh(0); err != nil {
			_ = f.Close()
			return nil, err
		}
		return l, nil
	}
	if flt := chaos.Inject(chaos.SiteWALOpenTornTail); flt != nil {
		// Simulate the image a torn write leaves: garbage appended past the
		// last valid record. Scan stops at it and the truncation below
		// removes it — durable records are never touched, so this exercises
		// exactly the recovery path without being able to violate
		// acked ⇒ durable.
		garbage := []byte{0xff, 0xff, 0xff, 0xff, 0xde, 0xad, 0xbe, 0xef}
		if _, err := f.WriteAt(garbage, st.Size()); err != nil {
			_ = f.Close()
			return nil, err
		}
	}
	res, err := Scan(f, nil)
	if err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	if res.N != n {
		_ = f.Close()
		return nil, fmt.Errorf("wal: open %s: %w: log universe n=%d, graph has n=%d",
			path, ErrBadHeader, res.N, n)
	}
	if res.Torn || res.ValidLen < st.Size() {
		if err := f.Truncate(res.ValidLen); err != nil {
			_ = f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(res.ValidLen, io.SeekStart); err != nil {
		_ = f.Close()
		return nil, err
	}
	l.lastSeq.Store(res.LastSeq)
	l.baseSeq.Store(res.BaseSeq)
	return l, nil
}

// writeFresh initializes l.f (assumed empty) with a header carrying baseSeq
// and fsyncs both the file and its directory.
func (l *Log) writeFresh(baseSeq uint64) error {
	if _, err := l.f.Write(encodeHeader(l.n, baseSeq)); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.lastSeq.Store(baseSeq)
	l.baseSeq.Store(baseSeq)
	return SyncDir(filepath.Dir(l.path))
}

// LastSeq returns the sequence number of the last durable record (or the
// checkpoint floor if the log holds none). Safe from any goroutine.
func (l *Log) LastSeq() uint64 { return l.lastSeq.Load() }

// BaseSeq returns the log's checkpoint floor: the sequence number already
// captured by a checkpoint when the log was last reset (zero for a log that
// has never been reset). Every record in the file has seq > BaseSeq. Safe
// from any goroutine — callers no longer need to re-read the file header to
// learn the floor.
func (l *Log) BaseSeq() uint64 { return l.baseSeq.Load() }

// Append writes one record and fsyncs — the group-commit point. r.Seq must
// be exactly LastSeq()+1. When Append returns a nil error the record is
// durable: any later Scan of the file yields it. The int is the framed
// byte length written.
//
//conn:fsync-barrier
func (l *Log) Append(r Record) (int, error) {
	if l.closed {
		return 0, errors.New("wal: append to closed log")
	}
	if r.Seq != l.lastSeq.Load()+1 {
		return 0, fmt.Errorf("wal: append seq %d, want %d", r.Seq, l.lastSeq.Load()+1)
	}
	enc := EncodeRecord(r)
	if flt := chaos.Inject(chaos.SiteWALAppendPreFsync); flt != nil {
		// Torn: a prefix of the frame reaches the file without an fsync —
		// the tail a crash mid-append leaves. The record was never acked,
		// so the truncation on the next Open loses nothing durable.
		if flt.Action == chaos.ActTorn {
			_, _ = l.f.Write(enc[:len(enc)/2])
		}
		return 0, flt.Err()
	}
	if _, err := l.f.Write(enc); err != nil {
		return 0, err
	}
	if err := l.f.Sync(); err != nil {
		return 0, err
	}
	if flt := chaos.Inject(chaos.SiteWALAppendPostFsync); flt != nil {
		// The fsync completed: the record IS durable, but the caller sees
		// failure — a crash between fsync and acknowledgement. A restart
		// replays a superset of the acked history, which the replay
		// idempotence contract absorbs.
		return 0, flt.Err()
	}
	l.lastSeq.Store(r.Seq)
	return len(enc), nil
}

// Reset atomically replaces the log with an empty one whose header records
// baseSeq as the new floor — called after a checkpoint capturing every
// record up to baseSeq has been durably written. The replacement is
// write-temp-then-rename, so a crash at any point leaves either the old
// complete log or the new empty one.
func (l *Log) Reset(baseSeq uint64) error {
	if l.closed {
		return errors.New("wal: reset of closed log")
	}
	if baseSeq < l.lastSeq.Load() {
		return fmt.Errorf("wal: reset to seq %d below last appended %d", baseSeq, l.lastSeq.Load())
	}
	tmp := l.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(encodeHeader(l.n, baseSeq)); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := os.Rename(tmp, l.path); err != nil {
		_ = f.Close()
		return err
	}
	if err := SyncDir(filepath.Dir(l.path)); err != nil {
		_ = f.Close()
		return err
	}
	old := l.f
	l.f = f
	l.lastSeq.Store(baseSeq)
	l.baseSeq.Store(baseSeq)
	return old.Close()
}

// Size returns the current byte length of the log file.
func (l *Log) Size() (int64, error) {
	st, err := l.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Close closes the file handle. Idempotent.
func (l *Log) Close() error {
	if l.closed {
		return nil
	}
	l.closed = true
	return l.f.Close()
}

// ErrSeqGone is returned by OpenTail when the requested resume point
// precedes the log's checkpoint floor: the records needed to bridge the gap
// were truncated away behind a checkpoint, so the caller must start from a
// snapshot instead of a tail replay.
var ErrSeqGone = errors.New("wal: requested sequence precedes the checkpoint floor")

// Tail is a read-only cursor over a WAL file that can follow a live log:
// Next returns records in order and reports ok=false when it reaches the
// current end of valid data — including a frame that is only partially
// written by a concurrent Append — after which a later Next retries from the
// same offset and succeeds once the frame completes. Replication catch-up
// uses it to stream the tail of a log that the dispatcher is still writing.
//
// A Tail holds its own file descriptor and never buffers past a record
// boundary, so it is unaffected by the writer's position; if the log is
// atomically replaced under it (Reset after a checkpoint), the Tail simply
// reaches the old file's end and reports ok=false forever — the records past
// that point are the live stream's to deliver.
type Tail struct {
	f       *os.File
	n       int
	base    uint64
	fromSeq uint64
	scanSeq uint64 // seq of the last record decoded at off (base if none)
	off     int64
	payload []byte
}

// OpenTail opens a tail cursor that yields records with seq > fromSeq. The
// file's checkpoint floor must not exceed fromSeq (ErrSeqGone otherwise:
// the gap's records no longer exist in this file); records at or below
// fromSeq that are still present are skipped, not returned.
func OpenTail(path string, fromSeq uint64) (*Tail, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, headerLen)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		_ = f.Close()
		return nil, ErrBadHeader
	}
	n, base, err := decodeHeader(hdr)
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	if fromSeq < base {
		_ = f.Close()
		return nil, fmt.Errorf("%w: want records after seq %d, floor is %d", ErrSeqGone, fromSeq, base)
	}
	return &Tail{f: f, n: n, base: base, fromSeq: fromSeq, scanSeq: base, off: headerLen}, nil
}

// BaseSeq returns the checkpoint floor recorded in the tailed file's header.
func (t *Tail) BaseSeq() uint64 { return t.base }

// LastSeq returns the seq of the last record Next decoded (the floor if
// none yet) — the cursor's current position in the epoch sequence.
func (t *Tail) LastSeq() uint64 {
	if t.scanSeq > t.fromSeq {
		return t.scanSeq
	}
	return t.fromSeq
}

// Next returns the next record with seq > fromSeq. ok=false means the cursor
// is at the current end of valid data (end of file, or a frame still being
// appended); call Next again later to resume. A non-nil error is an I/O
// failure reading the file — incomplete or checksum-dirty data is never an
// error, only "not yet".
func (t *Tail) Next() (Record, bool, error) {
	for {
		var frame [frameLen]byte
		if _, err := t.f.ReadAt(frame[:], t.off); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return Record{}, false, nil
			}
			return Record{}, false, err
		}
		plen := int(binary.LittleEndian.Uint32(frame[:4]))
		if plen < recMinLen || plen > maxPayload {
			// Garbage where a length prefix should be: either a torn tail the
			// writer will truncate on its next open, or mid-file corruption.
			// Both read as "no further valid records here".
			return Record{}, false, nil
		}
		if cap(t.payload) < plen {
			t.payload = make([]byte, plen)
		}
		t.payload = t.payload[:plen]
		if _, err := t.f.ReadAt(t.payload, t.off+frameLen); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return Record{}, false, nil // frame still being appended
			}
			return Record{}, false, err
		}
		if crc32.Checksum(t.payload, castagnoli) != binary.LittleEndian.Uint32(frame[4:]) {
			return Record{}, false, nil
		}
		rec, err := decodePayload(t.payload, t.n, t.scanSeq)
		if err != nil {
			return Record{}, false, nil
		}
		t.scanSeq = rec.Seq
		t.off += int64(frameLen + plen)
		if rec.Seq > t.fromSeq {
			return rec, true, nil
		}
	}
}

// Close releases the cursor's file descriptor.
func (t *Tail) Close() error { return t.f.Close() }

// SyncDir fsyncs a directory so a freshly created or renamed entry is
// durable. Errors from platforms that refuse to fsync directories are
// ignored — the data-file fsyncs still bound the loss to metadata. Shared
// with internal/checkpoint.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		_ = d.Close()
		return err
	}
	return d.Close()
}
