// Package wal implements the write-ahead log behind conn.Batcher's
// WithDurability mode: one length-prefixed, CRC-checksummed record per
// committed epoch that mutated the graph, made durable before the epoch is
// acknowledged — group commit in the classic sense, one fsync amortized
// over one or more coalesced batches, exactly the batching argument the
// paper makes for its work bounds.
//
// File layout (all integers little-endian):
//
//	header  : magic "connwal" (7) | version byte | n uint32 | baseSeq uint64 | crc32c uint32
//	record* : payloadLen uint32 | crc32c(payload) uint32 | payload
//
// The header's version byte names the Codec every payload in the file is
// encoded with (internal/wal/codec): version 1 is the raw fixed-width
// format (byte-identical to logs written before the codec seam existed),
// version 2 is delta+varint for near-sorted edge batches. A log is always
// read back with the codec its header names; the codec configured at
// OpenWithCodec takes effect when a fresh file is created — at first open
// of an empty path, or at the post-checkpoint Reset swap.
//
// n is the vertex universe the log belongs to. baseSeq is the sequence
// number already captured by a checkpoint when the log was last reset; every
// record in the file has seq > baseSeq, and seqs are strictly sequential
// (baseSeq+1, baseSeq+2, ...).
//
// Durability frontier: AppendRecord only writes; Sync forces everything
// appended so far to the medium and advances SyncedSeq, the synced
// frontier. Append is the two fused (the classic one-fsync-per-epoch
// path). Under the engine's group-sync scheduler several appended epochs
// share one Sync, and only the scheduler's sync point — never the append —
// acknowledges, so acked ⇒ durable is preserved exactly; SyncedSeq is what
// replication catch-up bounds itself by so followers never see a record
// that could still be lost.
//
// Recovery contract: Scan accepts any byte stream and never panics. It
// stops cleanly at the first frame that is incomplete (torn tail from a
// crash mid-write), fails its CRC, or decodes inconsistently — everything
// from that offset on is discarded and reported via ScanResult.Torn. Open
// truncates a torn tail so the next append starts at a record boundary.
//
// The log is also the replication transport (internal/repl): Tail is a
// read-only cursor that follows a live log from a given seq — replication
// catch-up streams a follower the records it missed while the dispatcher
// keeps appending.
//
//conn:decoders
//conn:durable-files
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"

	"repro/internal/chaos"
	"repro/internal/wal/codec"
)

// HeaderLen is the byte length of the file header; records start here.
const HeaderLen = 8 + 4 + 8 + 4

const (
	headerLen = HeaderLen
	frameLen  = 4 + 4 // payloadLen + crc
	recMinLen = 8 + 2 // seq + the smallest (v2) count encoding

	// maxPayload bounds a single record (~16M edges); anything larger is
	// treated as corruption rather than an allocation request.
	maxPayload = 1 << 27
)

// magicPrefix is the first 7 header bytes; the 8th is the codec version.
var magicPrefix = [7]byte{'c', 'o', 'n', 'n', 'w', 'a', 'l'}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrBadHeader is returned when a WAL file exists but its header is missing,
// truncated, checksum-corrupt, names an unknown format version, or
// disagrees with the expected universe.
var ErrBadHeader = errors.New("wal: bad or missing file header")

// Record is one durable epoch (see codec.Record — the payload encodings
// live in internal/wal/codec, behind the Codec seam).
type Record = codec.Record

// Codec is the payload encoding seam (see internal/wal/codec).
type Codec = codec.Codec

// The available codecs, re-exported for configuration call sites.
var (
	CodecV1 = codec.V1
	CodecV2 = codec.V2
)

func encodeHeader(n int, baseSeq uint64, ver byte) []byte {
	buf := make([]byte, headerLen)
	copy(buf, magicPrefix[:])
	buf[7] = ver
	binary.LittleEndian.PutUint32(buf[8:], uint32(n))
	binary.LittleEndian.PutUint64(buf[12:], baseSeq)
	binary.LittleEndian.PutUint32(buf[20:], crc32.Checksum(buf[:20], castagnoli))
	return buf
}

func decodeHeader(buf []byte) (n int, baseSeq uint64, c Codec, err error) {
	if len(buf) < headerLen || [7]byte(buf[:7]) != magicPrefix {
		return 0, 0, nil, ErrBadHeader
	}
	c, ok := codec.ByVersion(buf[7])
	if !ok {
		return 0, 0, nil, fmt.Errorf("%w: unknown format version %d", ErrBadHeader, buf[7])
	}
	if crc32.Checksum(buf[:20], castagnoli) != binary.LittleEndian.Uint32(buf[20:24]) {
		return 0, 0, nil, fmt.Errorf("%w: header checksum mismatch", ErrBadHeader)
	}
	n = int(binary.LittleEndian.Uint32(buf[8:12]))
	if n <= 0 {
		return 0, 0, nil, fmt.Errorf("%w: vertex count %d", ErrBadHeader, n)
	}
	return n, binary.LittleEndian.Uint64(buf[12:20]), c, nil
}

// encodeFrame serializes one record as a framed WAL entry under c. The
// returned payload aliases the tail of the frame buffer and is safe to
// retain (freshly allocated per call).
func encodeFrame(c Codec, r Record) (frame, payload []byte) {
	buf := c.Encode(make([]byte, frameLen, frameLen+codec.RawSize(r)), r)
	payload = buf[frameLen:]
	binary.LittleEndian.PutUint32(buf[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(payload, castagnoli))
	return buf, payload
}

// EncodeRecord serializes one record as a framed WAL entry in the v1
// codec — the fixed-width format, byte-identical to pre-codec logs.
func EncodeRecord(r Record) []byte {
	frame, _ := encodeFrame(codec.V1, r)
	return frame
}

// CodecByName resolves a codec by user-facing name ("v1"/"1", "v2"/"2") —
// the lookup configuration knobs go through.
func CodecByName(name string) (Codec, bool) { return codec.ByName(name) }

// CodecByVersion resolves a codec by format-version byte — the lookup a
// replication follower uses to decode raw records shipped in the primary
// log's encoding.
func CodecByVersion(v byte) (Codec, bool) { return codec.ByVersion(v) }

// RawSize returns a record's fixed-width (v1) payload size — the
// uncompressed baseline the engine's compression counters compare encoded
// bytes against.
func RawSize(r Record) int { return codec.RawSize(r) }

// ReadHeader reads and validates only the file header, returning the vertex
// universe and the checkpoint floor. Recovery uses it to cross-check a WAL
// against a checkpoint before paying for a full replay scan.
func ReadHeader(r io.Reader) (n int, baseSeq uint64, err error) {
	hdr := make([]byte, headerLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, 0, ErrBadHeader
	}
	n, baseSeq, _, err = decodeHeader(hdr)
	return n, baseSeq, err
}

// ScanResult summarizes one pass over a WAL byte stream.
type ScanResult struct {
	N        int    // vertex universe from the header
	BaseSeq  uint64 // checkpoint floor recorded in the header
	LastSeq  uint64 // seq of the last valid record (BaseSeq if none)
	Records  int    // valid records decoded
	ValidLen int64  // offset one past the last valid record
	Torn     bool   // trailing bytes after ValidLen were discarded
	Codec    byte   // format version the header names
}

// Scan reads a WAL byte stream, invoking fn (if non-nil) for each valid
// record in order, decoded with the codec the header names. It never panics
// on arbitrary input: a bad header returns ErrBadHeader; an incomplete,
// checksum-corrupt, or inconsistent frame stops the scan cleanly with Torn
// set. fn's slices are freshly allocated and may be retained. A non-nil fn
// error aborts the scan and is returned.
func Scan(r io.Reader, fn func(Record) error) (ScanResult, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var res ScanResult
	hdr := make([]byte, headerLen)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return res, ErrBadHeader
	}
	n, base, c, err := decodeHeader(hdr)
	if err != nil {
		return res, err
	}
	res.N, res.BaseSeq, res.LastSeq, res.Codec = n, base, base, c.Version()
	res.ValidLen = headerLen
	frame := make([]byte, frameLen)
	var payload []byte
	for {
		if _, err := io.ReadFull(br, frame); err != nil {
			res.Torn = err != io.EOF
			return res, nil
		}
		plen := int(binary.LittleEndian.Uint32(frame))
		if plen < recMinLen || plen > maxPayload {
			res.Torn = true
			return res, nil
		}
		if cap(payload) < plen {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if _, err := io.ReadFull(br, payload); err != nil {
			res.Torn = true
			return res, nil
		}
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(frame[4:]) {
			res.Torn = true
			return res, nil
		}
		rec, err := c.Decode(payload, n, res.LastSeq)
		if err != nil {
			res.Torn = true
			return res, nil
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return res, err
			}
		}
		res.Records++
		res.LastSeq = rec.Seq
		res.ValidLen += int64(frameLen + plen)
	}
}

// Log is an append-only WAL handle. Appends, resets and Close are owned by
// a single goroutine (the engine's dispatcher); Sync may additionally be
// called by the engine's group-sync scheduler, which serializes it against
// Reset and Close with its own lock. LastSeq, BaseSeq and SyncedSeq are
// atomic and may be read from any goroutine — replication stats and
// catch-up decisions read them concurrently with appends. Construct with
// Open or OpenWithCodec.
type Log struct {
	path      string
	f         *os.File
	n         int
	codec     Codec // the open file's codec (from its header)
	want      Codec // codec for fresh files (first create, Reset swap)
	lastSeq   atomic.Uint64
	syncedSeq atomic.Uint64
	baseSeq   atomic.Uint64
	fsyncs    atomic.Uint64
	closed    bool
}

// Open opens (or creates) the WAL at path for a universe of n vertices,
// writing fresh files in the v1 codec. See OpenWithCodec.
func Open(path string, n int) (*Log, error) {
	return OpenWithCodec(path, n, codec.V1)
}

// OpenWithCodec opens (or creates) the WAL at path for a universe of n
// vertices. An existing file is scanned end to end: its header must match
// n, a torn tail is truncated away, and appends continue after the last
// valid record's seq — in the codec the file's header names, regardless of
// c, so a log written under one codec never holds mixed encodings. c takes
// effect when a fresh file is written: at creation here, or at the next
// Reset. A new file is created with an fsynced header and an fsynced
// parent directory so the log itself survives a crash immediately after
// creation.
func OpenWithCodec(path string, n int, c Codec) (*Log, error) {
	if c == nil {
		c = codec.V1
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	l := &Log{path: path, f: f, n: n, codec: c, want: c}
	if st.Size() < headerLen {
		// Empty, or a partial header from a crash during initial creation —
		// shorter than the header, the file cannot hold any record, so
		// re-initializing loses nothing. (A post-checkpoint floor can never
		// be in this state: Reset replaces the file atomically.)
		if err := f.Truncate(0); err != nil {
			_ = f.Close()
			return nil, err
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			_ = f.Close()
			return nil, err
		}
		if err := l.writeFresh(0); err != nil {
			_ = f.Close()
			return nil, err
		}
		return l, nil
	}
	if flt := chaos.Inject(chaos.SiteWALOpenTornTail); flt != nil {
		// Simulate the image a torn write leaves: garbage appended past the
		// last valid record. Scan stops at it and the truncation below
		// removes it — durable records are never touched, so this exercises
		// exactly the recovery path without being able to violate
		// acked ⇒ durable.
		garbage := []byte{0xff, 0xff, 0xff, 0xff, 0xde, 0xad, 0xbe, 0xef}
		if _, err := f.WriteAt(garbage, st.Size()); err != nil {
			_ = f.Close()
			return nil, err
		}
	}
	res, err := Scan(f, nil)
	if err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	if res.N != n {
		_ = f.Close()
		return nil, fmt.Errorf("wal: open %s: %w: log universe n=%d, graph has n=%d",
			path, ErrBadHeader, res.N, n)
	}
	if res.Torn || res.ValidLen < st.Size() {
		if err := f.Truncate(res.ValidLen); err != nil {
			_ = f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(res.ValidLen, io.SeekStart); err != nil {
		_ = f.Close()
		return nil, err
	}
	fc, _ := codec.ByVersion(res.Codec)
	l.codec = fc
	l.lastSeq.Store(res.LastSeq)
	l.syncedSeq.Store(res.LastSeq)
	l.baseSeq.Store(res.BaseSeq)
	return l, nil
}

// writeFresh initializes l.f (assumed empty) with a header carrying baseSeq
// in the configured codec and fsyncs both the file and its directory.
func (l *Log) writeFresh(baseSeq uint64) error {
	l.codec = l.want
	if _, err := l.f.Write(encodeHeader(l.n, baseSeq, l.codec.Version())); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.lastSeq.Store(baseSeq)
	l.syncedSeq.Store(baseSeq)
	l.baseSeq.Store(baseSeq)
	return SyncDir(filepath.Dir(l.path))
}

// LastSeq returns the sequence number of the last appended record (or the
// checkpoint floor if the log holds none). Records at or below SyncedSeq
// are durable; between SyncedSeq and LastSeq they are written but not yet
// forced. Safe from any goroutine.
func (l *Log) LastSeq() uint64 { return l.lastSeq.Load() }

// SyncedSeq returns the synced frontier: the seq of the last record known
// forced to the medium. Acknowledgements and replication shipping must not
// pass it. Safe from any goroutine.
func (l *Log) SyncedSeq() uint64 { return l.syncedSeq.Load() }

// Fsyncs returns the number of Sync calls that reached the medium — the
// denominator of the bytes-per-fsync and fsyncs-saved stats.
func (l *Log) Fsyncs() uint64 { return l.fsyncs.Load() }

// Codec returns the codec of the currently open file.
func (l *Log) Codec() Codec { return l.codec }

// BaseSeq returns the log's checkpoint floor: the sequence number already
// captured by a checkpoint when the log was last reset (zero for a log that
// has never been reset). Every record in the file has seq > BaseSeq. Safe
// from any goroutine — callers no longer need to re-read the file header to
// learn the floor.
func (l *Log) BaseSeq() uint64 { return l.baseSeq.Load() }

// Append writes one record and fsyncs — the classic group-commit point,
// AppendRecord and Sync fused. When Append returns a nil error the record
// is durable: any later Scan of the file yields it. The int is the framed
// byte length written.
//
//conn:fsync-barrier
func (l *Log) Append(r Record) (int, error) {
	n, _, err := l.AppendRecord(r)
	if err != nil {
		return 0, err
	}
	if err := l.Sync(); err != nil {
		return 0, err
	}
	return n, nil
}

// AppendRecord writes one framed record without forcing it to the medium:
// the record is NOT durable until a later Sync returns, and must not be
// acknowledged or shipped to a replica before then. r.Seq must be exactly
// LastSeq()+1. The returned payload is the record's codec encoding
// (freshly allocated, safe to retain) — the engine tees it to the
// replication hub so followers ship the compressed bytes unchanged.
func (l *Log) AppendRecord(r Record) (n int, payload []byte, err error) {
	if l.closed {
		return 0, nil, errors.New("wal: append to closed log")
	}
	if r.Seq != l.lastSeq.Load()+1 {
		return 0, nil, fmt.Errorf("wal: append seq %d, want %d", r.Seq, l.lastSeq.Load()+1)
	}
	enc, payload := encodeFrame(l.codec, r)
	if flt := chaos.Inject(chaos.SiteWALAppendPreFsync); flt != nil {
		// Torn: a prefix of the frame reaches the file without an fsync —
		// the tail a crash mid-append leaves. The record was never acked,
		// so the truncation on the next Open loses nothing durable.
		if flt.Action == chaos.ActTorn {
			_, _ = l.f.Write(enc[:len(enc)/2])
		}
		return 0, nil, flt.Err()
	}
	if _, err := l.f.Write(enc); err != nil {
		return 0, nil, err
	}
	l.lastSeq.Store(r.Seq)
	return len(enc), payload, nil
}

// Sync forces every record appended so far to the medium and advances the
// synced frontier. It is the durability barrier acknowledgements order
// against: a record is durable — and may be acked or shipped — only once a
// Sync covering its seq has returned.
//
//conn:fsync-barrier
func (l *Log) Sync() error {
	if l.closed {
		return errors.New("wal: sync of closed log")
	}
	target := l.lastSeq.Load()
	if err := l.f.Sync(); err != nil {
		return err
	}
	if flt := chaos.Inject(chaos.SiteWALAppendPostFsync); flt != nil {
		// The fsync completed: the records ARE durable, but the caller sees
		// failure — a crash between fsync and acknowledgement. A restart
		// replays a superset of the acked history, which the replay
		// idempotence contract absorbs.
		return flt.Err()
	}
	l.fsyncs.Add(1)
	l.syncedSeq.Store(target)
	return nil
}

// Reset atomically replaces the log with an empty one whose header records
// baseSeq as the new floor — called after a checkpoint capturing every
// record up to baseSeq has been durably written. The fresh header is
// written in the configured codec, which is where a codec upgrade takes
// effect on a pre-existing log. The replacement is write-temp-then-rename,
// so a crash at any point leaves either the old complete log or the new
// empty one.
func (l *Log) Reset(baseSeq uint64) error {
	if l.closed {
		return errors.New("wal: reset of closed log")
	}
	if baseSeq < l.lastSeq.Load() {
		return fmt.Errorf("wal: reset to seq %d below last appended %d", baseSeq, l.lastSeq.Load())
	}
	tmp := l.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(encodeHeader(l.n, baseSeq, l.want.Version())); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := os.Rename(tmp, l.path); err != nil {
		_ = f.Close()
		return err
	}
	if err := SyncDir(filepath.Dir(l.path)); err != nil {
		_ = f.Close()
		return err
	}
	old := l.f
	l.f = f
	l.codec = l.want
	l.lastSeq.Store(baseSeq)
	l.syncedSeq.Store(baseSeq)
	l.baseSeq.Store(baseSeq)
	return old.Close()
}

// Size returns the current byte length of the log file.
func (l *Log) Size() (int64, error) {
	st, err := l.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Close closes the file handle. Idempotent.
func (l *Log) Close() error {
	if l.closed {
		return nil
	}
	l.closed = true
	return l.f.Close()
}

// ErrSeqGone is returned by OpenTail when the requested resume point
// precedes the log's checkpoint floor: the records needed to bridge the gap
// were truncated away behind a checkpoint, so the caller must start from a
// snapshot instead of a tail replay.
var ErrSeqGone = errors.New("wal: requested sequence precedes the checkpoint floor")

// Tail is a read-only cursor over a WAL file that can follow a live log:
// Next returns records in order and reports ok=false when it reaches the
// current end of valid data — including a frame that is only partially
// written by a concurrent append — after which a later Next retries from the
// same offset and succeeds once the frame completes. Records decode with
// the codec the tailed file's header names. Replication catch-up uses it to
// stream the tail of a log that the dispatcher is still writing.
//
// A Tail holds its own file descriptor and never buffers past a record
// boundary, so it is unaffected by the writer's position; if the log is
// atomically replaced under it (Reset after a checkpoint), the Tail simply
// reaches the old file's end and reports ok=false forever — the records past
// that point are the live stream's to deliver.
type Tail struct {
	f       *os.File
	n       int
	codec   Codec
	base    uint64
	fromSeq uint64
	scanSeq uint64 // seq of the last record decoded at off (base if none)
	off     int64
	payload []byte
}

// OpenTail opens a tail cursor that yields records with seq > fromSeq. The
// file's checkpoint floor must not exceed fromSeq (ErrSeqGone otherwise:
// the gap's records no longer exist in this file); records at or below
// fromSeq that are still present are skipped, not returned.
func OpenTail(path string, fromSeq uint64) (*Tail, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, headerLen)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		_ = f.Close()
		return nil, ErrBadHeader
	}
	n, base, c, err := decodeHeader(hdr)
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	if fromSeq < base {
		_ = f.Close()
		return nil, fmt.Errorf("%w: want records after seq %d, floor is %d", ErrSeqGone, fromSeq, base)
	}
	return &Tail{f: f, n: n, codec: c, base: base, fromSeq: fromSeq, scanSeq: base, off: headerLen}, nil
}

// BaseSeq returns the checkpoint floor recorded in the tailed file's header.
func (t *Tail) BaseSeq() uint64 { return t.base }

// Codec returns the format version byte of the tailed file.
func (t *Tail) Codec() byte { return t.codec.Version() }

// LastSeq returns the seq of the last record Next decoded (the floor if
// none yet) — the cursor's current position in the epoch sequence.
func (t *Tail) LastSeq() uint64 {
	if t.scanSeq > t.fromSeq {
		return t.scanSeq
	}
	return t.fromSeq
}

// Next returns the next record with seq > fromSeq. ok=false means the cursor
// is at the current end of valid data (end of file, or a frame still being
// appended); call Next again later to resume. A non-nil error is an I/O
// failure reading the file — incomplete or checksum-dirty data is never an
// error, only "not yet".
func (t *Tail) Next() (Record, bool, error) {
	rec, _, ok, err := t.next(^uint64(0), false)
	return rec, ok, err
}

// NextBelow is Next bounded by the writer's synced frontier: a record with
// seq > limit is NOT surfaced (or consumed — a later call with a higher
// limit returns it). raw is the record's encoded payload in the file's
// codec, freshly allocated; replication ships it unchanged so followers
// receive the compressed bytes. Catch-up passes the source's SyncedSeq so
// an appended-but-unsynced record — one a crash could still take back —
// never reaches a follower.
func (t *Tail) NextBelow(limit uint64) (rec Record, raw []byte, ok bool, err error) {
	return t.next(limit, true)
}

func (t *Tail) next(limit uint64, copyRaw bool) (Record, []byte, bool, error) {
	for {
		var frame [frameLen]byte
		if _, err := t.f.ReadAt(frame[:], t.off); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return Record{}, nil, false, nil
			}
			return Record{}, nil, false, err
		}
		plen := int(binary.LittleEndian.Uint32(frame[:4]))
		if plen < recMinLen || plen > maxPayload {
			// Garbage where a length prefix should be: either a torn tail the
			// writer will truncate on its next open, or mid-file corruption.
			// Both read as "no further valid records here".
			return Record{}, nil, false, nil
		}
		if cap(t.payload) < plen {
			t.payload = make([]byte, plen)
		}
		t.payload = t.payload[:plen]
		if _, err := t.f.ReadAt(t.payload, t.off+frameLen); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return Record{}, nil, false, nil // frame still being appended
			}
			return Record{}, nil, false, err
		}
		if crc32.Checksum(t.payload, castagnoli) != binary.LittleEndian.Uint32(frame[4:]) {
			return Record{}, nil, false, nil
		}
		rec, err := t.codec.Decode(t.payload, t.n, t.scanSeq)
		if err != nil {
			return Record{}, nil, false, nil
		}
		if rec.Seq > limit {
			// Past the caller's frontier: leave the cursor where it is so the
			// record is surfaced once the frontier advances over it.
			return Record{}, nil, false, nil
		}
		t.scanSeq = rec.Seq
		t.off += int64(frameLen + plen)
		if rec.Seq > t.fromSeq {
			var raw []byte
			if copyRaw {
				raw = append([]byte(nil), t.payload...)
			}
			return rec, raw, true, nil
		}
	}
}

// Close releases the cursor's file descriptor.
func (t *Tail) Close() error { return t.f.Close() }

// SyncDir fsyncs a directory so a freshly created or renamed entry is
// durable. Errors from platforms that refuse to fsync directories are
// ignored — the data-file fsyncs still bound the loss to metadata. Shared
// with internal/checkpoint.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		_ = d.Close()
		return err
	}
	return d.Close()
}
