package snapshot

import (
	"math/rand"
	"sync"
	"testing"
)

// modelGraph is a Source backed by a plain edge set with connectivity
// recomputed from scratch after every change — slow, obviously correct.
type modelGraph struct {
	n     int
	edges map[[2]int32]bool
	rep   []int32 // min-vertex label per vertex, recomputed by refresh
}

func newModel(n int) *modelGraph {
	m := &modelGraph{n: n, edges: map[[2]int32]bool{}}
	m.refresh()
	return m
}

func key(u, v int32) [2]int32 {
	if u > v {
		u, v = v, u
	}
	return [2]int32{u, v}
}

func (m *modelGraph) refresh() {
	parent := make([]int32, m.n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for e := range m.edges {
		ru, rv := find(e[0]), find(e[1])
		if ru != rv {
			parent[ru] = rv
		}
	}
	min := make([]int32, m.n)
	for i := range min {
		min[i] = int32(m.n)
	}
	for u := 0; u < m.n; u++ {
		r := find(int32(u))
		if int32(u) < min[r] {
			min[r] = int32(u)
		}
	}
	m.rep = make([]int32, m.n)
	for u := 0; u < m.n; u++ {
		m.rep[u] = min[find(int32(u))]
	}
}

func (m *modelGraph) ComponentID(u int32) uint64 { return uint64(m.rep[u]) }

func (m *modelGraph) ComponentSize(u int32) int64 {
	var c int64
	for v := 0; v < m.n; v++ {
		if m.rep[v] == m.rep[u] {
			c++
		}
	}
	return c
}

func (m *modelGraph) ComponentVertices(u int32) []int32 {
	var out []int32
	for v := 0; v < m.n; v++ {
		if m.rep[v] == m.rep[u] {
			out = append(out, int32(v))
		}
	}
	return out
}

func (m *modelGraph) ComponentLabels(dst []int32) { copy(dst, m.rep) }

// mutate applies k random edge toggles and returns the touched endpoints.
func (m *modelGraph) mutate(rng *rand.Rand, k int) []int32 {
	var touched []int32
	for i := 0; i < k; i++ {
		u, v := int32(rng.Intn(m.n)), int32(rng.Intn(m.n))
		if u == v {
			continue
		}
		e := key(u, v)
		if m.edges[e] {
			delete(m.edges, e)
		} else {
			m.edges[e] = true
		}
		touched = append(touched, u, v)
	}
	m.refresh()
	return touched
}

func checkAgainstModel(t *testing.T, l *Labels, m *modelGraph, tag string) {
	t.Helper()
	for u := 0; u < m.n; u++ {
		if l.Label(int32(u)) != m.rep[u] {
			t.Fatalf("%s: Label(%d) = %d, model says %d", tag, u, l.Label(int32(u)), m.rep[u])
		}
	}
}

// TestPublishDifferential drives random epochs through stores at both
// extremes of the rebuild threshold — always-incremental and always-rebuild
// — and checks every published labelling against the model.
func TestPublishDifferential(t *testing.T) {
	const n = 256
	for _, threshold := range []int{1, n * n} {
		m := newModel(n)
		s := NewStore(n, threshold, m)
		checkAgainstModel(t, s.Current(), m, "initial")
		rng := rand.New(rand.NewSource(int64(threshold)))
		for epoch := 0; epoch < 60; epoch++ {
			touched := m.mutate(rng, 1+rng.Intn(8))
			s.Publish(touched)
			checkAgainstModel(t, s.Current(), m, "epoch")
		}
		st := s.Stats()
		if threshold == 1 && st.Rebuilds != st.Publishes {
			t.Errorf("threshold=1: want every publish to rebuild, got %d/%d", st.Rebuilds, st.Publishes)
		}
		if threshold == n*n && st.Rebuilds != 0 {
			t.Errorf("threshold=n²: want no rebuilds, got %d", st.Rebuilds)
		}
	}
}

// TestPublishMergeSplitScenarios pins the two connectivity-changing shapes
// the incremental path must repair: merging two labelled components, and a
// split where the smaller fragment holds no minimum.
func TestPublishMergeSplitScenarios(t *testing.T) {
	const n = 16
	m := newModel(n)
	s := NewStore(n, n*n, m) // incremental only

	// Build path 0-1-2-3 and path 8-9.
	for _, e := range [][2]int32{{0, 1}, {1, 2}, {2, 3}, {8, 9}} {
		m.edges[key(e[0], e[1])] = true
	}
	m.refresh()
	s.Publish([]int32{0, 1, 1, 2, 2, 3, 8, 9})
	checkAgainstModel(t, s.Current(), m, "build")

	// Merge the two via (3,8): labels of 8 and 9 must fall to 0.
	m.edges[key(3, 8)] = true
	m.refresh()
	s.Publish([]int32{3, 8})
	checkAgainstModel(t, s.Current(), m, "merge")
	if got := s.Current().Label(9); got != 0 {
		t.Fatalf("after merge, Label(9) = %d, want 0", got)
	}

	// Split by cutting (1,2): fragment {2,3,8,9} gets fresh min 2, and the
	// touched endpoints (1 and 2) sit in different fragments.
	delete(m.edges, key(1, 2))
	m.refresh()
	s.Publish([]int32{1, 2})
	checkAgainstModel(t, s.Current(), m, "split")
	if !s.Current().Connected(2, 9) || s.Current().Connected(0, 9) {
		t.Fatal("split labelling wrong")
	}

	// Empty touched set: no new publish, same snapshot.
	before := s.Current()
	s.Publish(nil)
	if s.Current() != before {
		t.Fatal("Publish(nil) replaced the snapshot")
	}
	if got := s.Current().Epoch(); got != 3 {
		t.Fatalf("Epoch = %d, want 3", got)
	}
}

// TestConcurrentReadersDuringPublish hammers Current from many goroutines
// while the publisher replaces snapshots — run with -race. Readers verify
// each loaded Labels is internally canonical (lbl[u] <= u and
// lbl[lbl[u]] == lbl[u]), which would break if a published array were ever
// mutated or torn.
func TestConcurrentReadersDuringPublish(t *testing.T) {
	const n = 512
	m := newModel(n)
	s := NewStore(n, 0, m)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				l := s.Current()
				for u := 0; u < n; u++ {
					lu := l.Label(int32(u))
					if lu > int32(u) || l.Label(lu) != lu {
						t.Errorf("snapshot not canonical at %d: lbl=%d", u, lu)
						return
					}
					if !l.Connected(int32(u), lu) {
						t.Errorf("Connected(%d, label) = false", u)
						return
					}
				}
			}
		}(g)
	}
	rng := rand.New(rand.NewSource(99))
	epochs := 200
	if testing.Short() {
		epochs = 40
	}
	var last uint64
	for e := 0; e < epochs; e++ {
		s.Publish(m.mutate(rng, 1+rng.Intn(6)))
		if cur := s.Current().Epoch(); cur < last {
			t.Fatalf("epoch went backwards: %d -> %d", last, cur)
		} else {
			last = cur
		}
	}
	close(stop)
	wg.Wait()
	checkAgainstModel(t, s.Current(), m, "final")
}
