// Package snapshot maintains an epoch-published component labelling for the
// wait-free read tier of conn.Batcher (ReadRecent): after each committed
// epoch the dispatcher publishes, through an atomic.Pointer, an immutable
// array lbl such that lbl[u] == lbl[v] iff u and v were connected as of that
// epoch. A reader then answers a connectivity query with two array loads and
// a compare — no locks, no coalescing window, no treap walks — at the price
// of bounded staleness (the last committed epoch, not the live structure).
//
// # Labelling invariant
//
// Every published labelling satisfies lbl[u] == the minimum vertex id of
// u's component. Min-vertex labels have two properties the incremental
// repair relies on: they are unique across the partition without a
// renumbering pass, and a component that an epoch did not touch keeps its
// label — so only dirty components need rewriting.
//
// # Incremental repair
//
// An epoch's connectivity changes are confined to components containing an
// endpoint of an applied edge: a merge joins two components each holding an
// endpoint of the inserted tree edge, and after a split (or a partial
// reconnection through replacement edges) every resulting fragment contains
// an endpoint of some deleted edge — walk the severed path from any vertex
// of the fragment and the first missing edge's near endpoint lies in the
// fragment. Publish therefore dedups the epoch's touched vertices by live
// component, walks each dirty component once, and rewrites only those
// labels; components whose aggregate size exceeds the rebuild threshold are
// instead handled by one full relabelling pass. Each publish allocates a
// fresh array: readers may hold a Labels for arbitrarily long, so buffers
// are never recycled.
package snapshot

import "sync/atomic"

// Labels is one immutable published labelling. All methods are wait-free
// reads; a Labels never changes after publication.
//
//conn:published
//conn:readonly-queries
type Labels struct {
	lbl   []int32
	epoch uint64
}

// Connected reports whether u and v were in the same component as of the
// publishing epoch: two array loads and a compare.
//
//conn:readonly
func (l *Labels) Connected(u, v int32) bool { return l.lbl[u] == l.lbl[v] }

// Label returns u's component label — the minimum vertex id of u's component
// as of the publishing epoch.
//
//conn:readonly
func (l *Labels) Label(u int32) int32 { return l.lbl[u] }

// Epoch returns the publish counter: 0 for the initial labelling, +1 per
// Publish that changed anything. Monotone; lets callers bound staleness.
func (l *Labels) Epoch() uint64 { return l.epoch }

// Len returns the vertex count.
func (l *Labels) Len() int { return len(l.lbl) }

// CopyTo copies the labelling into dst (length Len). The sharded event
// composer gathers every engine's labelling this way before the union-find
// contraction; copying keeps the published array unaliased.
//
//conn:readonly
func (l *Labels) CopyTo(dst []int32) { copy(dst, l.lbl) }

// NewLabels wraps a caller-built labelling as an immutable Labels — the
// constructor the sharded composer uses for the globally-composed labelling
// it diffs and hands to the event hub. Ownership of lbl transfers: the
// caller must never write to it again.
func NewLabels(lbl []int32, epoch uint64) *Labels { return &Labels{lbl: lbl, epoch: epoch} }

// Diff describes one published transition: the labelling that was current
// before, the one published in its place, and the vertices whose label
// changed (each exactly once, ascending within the rebuild path,
// unspecified order otherwise). Because labels are canonical min-vertex
// ids, Changed is non-empty exactly when the epoch changed the partition —
// this is the partition-changing-epoch detection the connectivity event
// hub (internal/pubsub) is fed from. Both Labels are immutable; a Diff may
// be retained and read from any goroutine.
type Diff struct {
	Prev, Cur *Labels
	Changed   []int32
}

// Source is the read-only view of the live structure the publisher walks.
// All methods must be safe for the publisher to call while concurrent
// readers run Labels methods (they are: conn.Graph's implementations are
// pure reads under the core read-only query contract, and Publish is called
// only from the single dispatcher goroutine with no writer in flight).
type Source interface {
	// ComponentID returns a component identifier: equal iff connected,
	// unique per component.
	ComponentID(u int32) uint64
	// ComponentSize returns the vertex count of u's component.
	ComponentSize(u int32) int64
	// ComponentVertices returns every vertex of u's component.
	ComponentVertices(u int32) []int32
	// ComponentLabels fills dst with the full min-vertex labelling.
	ComponentLabels(dst []int32)
}

// Store owns the published labelling. Current is safe from any goroutine;
// Publish must be called from a single goroutine (the dispatcher) with no
// structure mutation in flight.
type Store struct {
	n         int
	threshold int64
	src       Source
	cur       atomic.Pointer[Labels]
	publishes atomic.Int64
	rebuilds  atomic.Int64
}

// Stats counts publisher activity.
type Stats struct {
	Publishes int64 // epochs that changed connectivity and published
	Rebuilds  int64 // publishes that fell back to a full relabelling
}

// NewStore computes the initial labelling from src and returns a store.
// threshold bounds the incremental repair: when the dirty components of an
// epoch hold more than threshold vertices in total, Publish does one full
// relabelling instead of walking them individually. threshold <= 0 selects
// max(1024, n/4).
func NewStore(n, threshold int, src Source) *Store {
	if threshold <= 0 {
		threshold = n / 4
		if threshold < 1024 {
			threshold = 1024
		}
	}
	s := &Store{n: n, threshold: int64(threshold), src: src}
	lbl := make([]int32, n)
	src.ComponentLabels(lbl)
	s.publish(&Labels{lbl: lbl})
	return s
}

// Current returns the most recently published labelling. Wait-free; safe
// from any goroutine.
//
//conn:readonly
func (s *Store) Current() *Labels { return s.cur.Load() }

// publish is the single designated store site for the labelling pointer —
// the one place a *Labels may cross from the dispatcher to readers. l and
// everything reachable from it must already be immutable: the atomic store
// is the publication fence, so a later write to l.lbl would race with every
// reader. Enforced by the atomicpublish analyzer.
//
//conn:publish-helper
func (s *Store) publish(l *Labels) { s.cur.Store(l) }

// Stats returns publisher counters.
func (s *Store) Stats() Stats {
	return Stats{Publishes: s.publishes.Load(), Rebuilds: s.rebuilds.Load()}
}

// Publish incorporates one committed epoch: touched lists the endpoints of
// the epoch's applied insertions and deletions (a superset is fine; an empty
// list means connectivity is unchanged and the current labelling stands).
// A new snapshot is published only when some label actually changes —
// updates that leave the partition intact (an edge inside a component, a
// deleted non-bridge) cost the dirty-component walks but allocate nothing
// and do not advance the epoch counter. Returns the transition when a
// snapshot was published, nil when the labelling stood: exactly the
// partition-changing epochs, which the engine tees to connectivity-event
// subscribers. Dispatcher-only.
//
//conn:dispatcher-only
func (s *Store) Publish(touched []int32) *Diff {
	if len(touched) == 0 {
		return nil
	}
	prev := s.cur.Load()
	// Dirty components, deduped by live component id; budget is the total
	// number of labels the incremental path would rewrite.
	witness := make(map[uint64]int32, len(touched))
	var budget int64
	for _, t := range touched {
		id := s.src.ComponentID(t)
		if _, ok := witness[id]; ok {
			continue
		}
		witness[id] = t
		budget += s.src.ComponentSize(t)
		if budget > s.threshold {
			break
		}
	}

	if budget > s.threshold {
		lbl := make([]int32, s.n)
		s.src.ComponentLabels(lbl)
		var changed []int32
		for i := range lbl {
			if lbl[i] != prev.lbl[i] {
				changed = append(changed, int32(i))
			}
		}
		if len(changed) == 0 {
			return nil // full relabelling reproduced the published labels
		}
		s.rebuilds.Add(1)
		s.publishes.Add(1)
		cur := &Labels{lbl: lbl, epoch: prev.epoch + 1}
		s.publish(cur)
		return &Diff{Prev: prev, Cur: cur, Changed: changed}
	}

	// Walk each dirty component once, recording the components whose labels
	// actually differ; allocate a snapshot only if any do.
	type patch struct {
		vs []int32
		m  int32
	}
	var patches []patch
	for _, w := range witness {
		vs := s.src.ComponentVertices(w)
		m := vs[0]
		for _, v := range vs {
			if v < m {
				m = v
			}
		}
		for _, v := range vs {
			if prev.lbl[v] != m {
				patches = append(patches, patch{vs: vs, m: m})
				break
			}
		}
	}
	if len(patches) == 0 {
		return nil
	}
	lbl := make([]int32, s.n)
	copy(lbl, prev.lbl)
	var changed []int32
	for _, p := range patches {
		for _, v := range p.vs {
			if lbl[v] != p.m {
				changed = append(changed, v)
				lbl[v] = p.m
			}
		}
	}
	s.publishes.Add(1)
	cur := &Labels{lbl: lbl, epoch: prev.epoch + 1}
	s.publish(cur)
	return &Diff{Prev: prev, Cur: cur, Changed: changed}
}
