package conn

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/graphgen"
	"repro/internal/hdt"
)

func TestQuickstartFlow(t *testing.T) {
	g := New(8)
	if got := g.InsertEdges([]Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}}); got != 3 {
		t.Fatalf("InsertEdges = %d", got)
	}
	if !g.Connected(0, 2) || g.Connected(0, 3) {
		t.Fatal("connectivity wrong")
	}
	ans := g.ConnectedBatch([]Edge{{U: 0, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}})
	if !ans[0] || ans[1] || !ans[2] {
		t.Fatalf("ConnectedBatch = %v", ans)
	}
	if got := g.DeleteEdges([]Edge{{U: 1, V: 2}}); got != 1 {
		t.Fatalf("DeleteEdges = %d", got)
	}
	if g.Connected(0, 2) {
		t.Fatal("still connected after bridge deletion")
	}
	if g.NumEdges() != 2 || g.N() != 8 {
		t.Fatalf("NumEdges=%d N=%d", g.NumEdges(), g.N())
	}
	// {0,1}, {3,4}, and singletons 2, 5, 6, 7.
	if g.NumComponents() != 6 {
		t.Fatalf("NumComponents = %d", g.NumComponents())
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 2) {
		t.Fatal("HasEdge wrong")
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNewPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) should panic")
		}
	}()
	New(0)
}

func TestBothAlgorithmsExposed(t *testing.T) {
	for _, alg := range []Algorithm{Interleaved, Simple} {
		g := New(16, WithAlgorithm(alg))
		g.InsertEdges([]Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 2, V: 3}})
		g.DeleteEdges([]Edge{{U: 1, V: 2}, {U: 2, V: 3}})
		if !g.Connected(0, 2) || g.Connected(0, 3) {
			t.Fatalf("alg %v: wrong connectivity", alg)
		}
	}
}

// TestAgreesWithHDTOnWorkload runs the same scripted workload through the
// public batch-parallel structure and the sequential HDT baseline and
// requires identical query answers throughout.
func TestAgreesWithHDTOnWorkload(t *testing.T) {
	n := 128
	w := graphgen.MixedWorkload(n, 400, 50, 40, 8, 64, 9)
	for _, alg := range []Algorithm{Interleaved, Simple} {
		g := New(n, WithAlgorithm(alg))
		h := hdt.New(n)
		for oi, op := range w.Ops {
			switch op.Kind {
			case graphgen.OpInsert:
				es := make([]Edge, len(op.Edges))
				for i, e := range op.Edges {
					es[i] = Edge{U: e.U, V: e.V}
					h.Insert(e.U, e.V)
				}
				g.InsertEdges(es)
			case graphgen.OpDelete:
				es := make([]Edge, len(op.Edges))
				for i, e := range op.Edges {
					es[i] = Edge{U: e.U, V: e.V}
					h.Delete(e.U, e.V)
				}
				g.DeleteEdges(es)
			case graphgen.OpQuery:
				qs := make([]Edge, len(op.Edges))
				for i, e := range op.Edges {
					qs[i] = Edge{U: e.U, V: e.V}
				}
				got := g.ConnectedBatch(qs)
				for i, q := range op.Edges {
					want := h.Connected(q.U, q.V)
					if got[i] != want {
						t.Fatalf("alg %v op %d: query (%d,%d) = %v, HDT says %v",
							alg, oi, q.U, q.V, got[i], want)
					}
				}
			}
		}
		if g.NumEdges() != h.NumEdges() {
			t.Fatalf("alg %v: edge counts diverge: %d vs %d", alg, g.NumEdges(), h.NumEdges())
		}
	}
}

func TestComponentsMatchLabels(t *testing.T) {
	g := New(100)
	es := graphgen.RandomGraph(100, 80, 3)
	batch := make([]Edge, len(es))
	for i, e := range es {
		batch[i] = Edge{U: e.U, V: e.V}
	}
	g.InsertEdges(batch)
	lbl := g.Components()
	for trial := 0; trial < 500; trial++ {
		u := int32(trial % 100)
		v := int32((trial * 7) % 100)
		if (lbl[u] == lbl[v]) != g.Connected(u, v) {
			t.Fatalf("labels disagree with Connected(%d,%d)", u, v)
		}
	}
}

func TestStatsExposed(t *testing.T) {
	g := New(32)
	g.InsertEdges([]Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
	g.DeleteEdges([]Edge{{U: 0, V: 1}})
	s := g.Stats()
	if s.Inserts != 3 || s.Deletes != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLargeRandomPublicAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rng := rand.New(rand.NewSource(31))
	n := 512
	g := New(n)
	h := hdt.New(n)
	live := map[uint64]graph.Edge{}
	for step := 0; step < 25; step++ {
		var ins []Edge
		for j := 0; j < 200; j++ {
			u := int32(rng.Intn(n))
			v := int32(rng.Intn(n))
			if u == v {
				continue
			}
			ins = append(ins, Edge{U: u, V: v})
		}
		g.InsertEdges(ins)
		for _, e := range ins {
			ge := graph.Edge{U: e.U, V: e.V}.Canon()
			if h.Insert(e.U, e.V) {
				live[ge.Key()] = ge
			}
		}
		var del []Edge
		for _, e := range live {
			if rng.Intn(3) == 0 {
				del = append(del, Edge{U: e.U, V: e.V})
			}
		}
		g.DeleteEdges(del)
		for _, e := range del {
			h.Delete(e.U, e.V)
			delete(live, graph.Edge{U: e.U, V: e.V}.Key())
		}
		for q := 0; q < 300; q++ {
			u := int32(rng.Intn(n))
			v := int32(rng.Intn(n))
			if g.Connected(u, v) != h.Connected(u, v) {
				t.Fatalf("step %d: disagreement on (%d,%d)", step, u, v)
			}
		}
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
